// Tests for utilities: RNG determinism, the portable binomial sampler,
// table formatting, CLI parsing.
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/numeric/binomial.hpp"
#include "flowrank/util/binomial_sample.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/rng.hpp"
#include "flowrank/util/table.hpp"

namespace fu = flowrank::util;

TEST(Rng, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(fu::derive_seed(1, 0), fu::derive_seed(1, 0));
  EXPECT_NE(fu::derive_seed(1, 0), fu::derive_seed(1, 1));
  EXPECT_NE(fu::derive_seed(1, 0), fu::derive_seed(2, 0));
  // Nearby streams decorrelate: low bits differ roughly half the time.
  int differing_bits = 0;
  const auto a = fu::derive_seed(42, 100);
  const auto b = fu::derive_seed(42, 101);
  for (int bit = 0; bit < 64; ++bit) {
    differing_bits += ((a >> bit) & 1) != ((b >> bit) & 1);
  }
  EXPECT_GT(differing_bits, 16);
}

// Regression: the simulation used to pack (rate_idx, run, bin) into one
// stream id with shifts ((rate_idx << 40) ^ (run << 20) ^ bin), which
// collides once a trace has >= 2^20 bins — (run=1, bin=0) aliased
// (run=0, bin=2^20), correlating Monte-Carlo runs. The splitmix mixing
// must keep such triples on distinct streams.
TEST(Rng, MixStreamsSeparatesTriplesBeyondShiftFieldWidths) {
  const auto stream_a = fu::mix_streams(0, 1, 0);
  const auto stream_b = fu::mix_streams(0, 0, std::uint64_t{1} << 20);
  EXPECT_NE(stream_a, stream_b);
  // The engines they seed must diverge too.
  auto ea = fu::make_engine(3, stream_a);
  auto eb = fu::make_engine(3, stream_b);
  EXPECT_NE(ea(), eb());
}

TEST(Rng, MixStreamsIsDeterministicAndCollisionFreeOnAGrid) {
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  // Rate/run ranges as the simulation uses them; bins sweep both small
  // indices and the 2^20 / 2^40 aliasing boundaries of the old packing.
  std::vector<std::uint64_t> bins;
  for (std::uint64_t b = 0; b < 64; ++b) bins.push_back(b);
  for (const std::uint64_t base : {std::uint64_t{1} << 20, std::uint64_t{1} << 40}) {
    for (std::uint64_t off = 0; off < 8; ++off) bins.push_back(base + off);
  }
  for (std::uint64_t rate_idx = 0; rate_idx < 4; ++rate_idx) {
    for (std::uint64_t run = 0; run < 30; ++run) {
      for (const std::uint64_t bin : bins) {
        EXPECT_EQ(fu::mix_streams(rate_idx, run, bin),
                  fu::mix_streams(rate_idx, run, bin));
        seen.insert(fu::mix_streams(rate_idx, run, bin));
        ++total;
      }
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Rng, EnginesReproduce) {
  auto e1 = fu::make_engine(7, 3);
  auto e2 = fu::make_engine(7, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(e1(), e2());
}

TEST(Table, AlignedOutput) {
  fu::Table table({"name", "value"});
  table.add_row(std::string("alpha"), 1.5);
  table.add_row(std::string("b"), 22LL);
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, CsvQuoting) {
  fu::Table table({"a", "b"});
  table.add_row(std::string("x,y"), std::string("say \"hi\""));
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RejectsMalformedUse) {
  EXPECT_THROW(fu::Table{std::vector<std::string>{}}, std::invalid_argument);
  fu::Table table({"only"});
  table.add_cell(std::string("1"));
  EXPECT_THROW(table.add_cell(std::string("2")), std::logic_error);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",     "--alpha=1.5", "--flag", "--name", "value",
                        "positional"};
  fu::Cli cli(6, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 1.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_string("name", ""), "value");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksAndValidation) {
  const char* argv[] = {"prog", "--n=12"};
  fu::Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_FALSE(cli.has("missing"));
  const char* bad[] = {"prog", "--n=notanumber"};
  fu::Cli bad_cli(2, bad);
  EXPECT_THROW((void)bad_cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)bad_cli.get_double("n", 0.0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1"};
  fu::Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  const char* bad[] = {"prog", "--x=maybe"};
  fu::Cli bad_cli(2, bad);
  EXPECT_THROW((void)bad_cli.get_bool("x", false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// util::binomial_sample: the portable canonical binomial stream
// ---------------------------------------------------------------------------

namespace {

/// Chi-squared goodness-of-fit of binomial_sample(n, p) draws against the
/// exact pmf, with tail bins merged until every cell expects >= 5 counts.
/// Returns (statistic, degrees of freedom).
std::pair<double, int> binomial_chi_squared(std::uint64_t n, double p,
                                            int trials, std::uint64_t seed) {
  auto engine = fu::make_engine(seed);
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t k = fu::binomial_sample(n, p, engine);
    EXPECT_LE(k, n);
    ++counts[k];
  }
  // Merge k-cells left to right into bins with expected count >= 5.
  double chi2 = 0.0;
  int cells = 0;
  double expected_acc = 0.0;
  double observed_acc = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    expected_acc +=
        trials * flowrank::numeric::binomial_pmf(static_cast<std::int64_t>(k),
                                                 static_cast<std::int64_t>(n), p);
    observed_acc += static_cast<double>(counts[k]);
    if (expected_acc >= 5.0 && k < n) {
      const double d = observed_acc - expected_acc;
      chi2 += d * d / expected_acc;
      ++cells;
      expected_acc = 0.0;
      observed_acc = 0.0;
    }
  }
  // Whatever remains (the right tail, incl. pmf mass beyond the last
  // observed k) forms the final cell.
  if (expected_acc > 0.0) {
    const double d = observed_acc - expected_acc;
    chi2 += d * d / expected_acc;
    ++cells;
  }
  return {chi2, cells - 1};
}

}  // namespace

TEST(BinomialSample, EdgeCasesAndValidation) {
  auto engine = fu::make_engine(5);
  EXPECT_EQ(fu::binomial_sample(0, 0.5, engine), 0u);
  EXPECT_EQ(fu::binomial_sample(100, 0.0, engine), 0u);
  EXPECT_EQ(fu::binomial_sample(100, 1.0, engine), 100u);
  EXPECT_THROW((void)fu::binomial_sample(10, -0.1, engine), std::invalid_argument);
  EXPECT_THROW((void)fu::binomial_sample(10, 1.5, engine), std::invalid_argument);
  EXPECT_THROW((void)fu::binomial_sample(10, std::nan(""), engine),
               std::invalid_argument);
}

TEST(BinomialSample, DeterministicInEngineState) {
  auto a = fu::make_engine(123, 9);
  auto b = fu::make_engine(123, 9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(fu::binomial_sample(5000, 0.37, a), fu::binomial_sample(5000, 0.37, b));
  }
}

// Chi-squared goodness of fit across the BINV/BTPE branch boundary
// (n·min(p,1-p) = kBinomialInversionMaxMean = 30): both algorithms, both
// the direct and the flipped (p > 1/2) parameterizations, including cases
// that sit just on either side of the threshold. The 0.999-quantile of
// chi-squared(d) is below d + 3.3·sqrt(2d) + 4 in this dof range, so the
// bound fails with probability << 1e-3 per case were the sampler exact —
// and the seeds are fixed, so the test is deterministic.
TEST(BinomialSample, ChiSquaredAcrossBranchBoundary) {
  struct Case {
    std::uint64_t n;
    double p;
  };
  const Case cases[] = {
      {50, 0.2},     // BINV, small mean
      {100, 0.29},   // BINV, just under the boundary (29)
      {100, 0.31},   // BTPE, just over the boundary (31)
      {100, 0.71},   // flipped: pp = 0.29, BINV
      {100, 0.69},   // flipped: pp = 0.31, BTPE
      {2000, 0.01},  // BINV at large n, tiny p (the thinning regime)
      {2000, 0.2},   // BTPE bulk
      {400, 0.5},    // BTPE at the symmetric point
  };
  std::uint64_t seed = 1000;
  for (const auto& c : cases) {
    const auto [chi2, dof] = binomial_chi_squared(c.n, c.p, 40000, seed++);
    ASSERT_GT(dof, 3);
    EXPECT_LT(chi2, dof + 3.3 * std::sqrt(2.0 * dof) + 4.0)
        << "n=" << c.n << " p=" << c.p << " dof=" << dof;
  }
}

// BinomialThinner memoizes setup only — its stream must match
// binomial_sample draw for draw, across both branches and flips, so that
// sweeps using a thinner are bit-identical to one-shot callers.
TEST(BinomialSample, ThinnerMatchesOneShotStream) {
  for (double p : {0.001, 0.02, 0.31, 0.5, 0.69, 0.97}) {
    fu::BinomialThinner thinner(p);
    auto one_shot_engine = fu::make_engine(77, 3);
    auto thinner_engine = fu::make_engine(77, 3);
    std::uint64_t sizes[] = {1, 2, 3, 7, 9, 2, 40, 7, 1000, 7, 3, 200000, 9, 1};
    for (int rep = 0; rep < 50; ++rep) {
      for (std::uint64_t n : sizes) {
        ASSERT_EQ(fu::binomial_sample(n, p, one_shot_engine),
                  thinner(n, thinner_engine))
            << "p=" << p << " n=" << n << " rep=" << rep;
      }
    }
    // Engines consumed the same number of variates.
    EXPECT_EQ(one_shot_engine(), thinner_engine());
  }
}

TEST(BinomialSample, ThinnerValidatesAndShortCircuits) {
  EXPECT_THROW(fu::BinomialThinner{-0.1}, std::invalid_argument);
  EXPECT_THROW(fu::BinomialThinner{1.5}, std::invalid_argument);
  fu::BinomialThinner zero(0.0), one(1.0);
  auto engine = fu::make_engine(1);
  EXPECT_EQ(zero(100, engine), 0u);
  EXPECT_EQ(one(100, engine), 100u);
  EXPECT_EQ(one(0, engine), 0u);
}
