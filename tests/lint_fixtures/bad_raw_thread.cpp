// Fixture: trips exactly [raw-thread]. Threads belong to the exec layer.
#include <thread>

void spawn_outside_exec() {
  std::thread worker([] {});
  worker.join();
}
