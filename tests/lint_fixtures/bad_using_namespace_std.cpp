// Fixture: trips exactly [using-namespace-std].
#include <vector>

using namespace std;

vector<int> empty_vector() { return {}; }
