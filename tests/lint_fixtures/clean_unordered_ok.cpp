// Fixture: must produce zero findings. The unordered-ok comment marks a
// reviewed order-insensitive fold; banned symbols in comments (like
// std::random_device or std::binomial_distribution here) never count.
#include <cstdint>
#include <unordered_map>

std::uint64_t total(const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::unordered_map<std::uint64_t, std::uint64_t> copy = counts;
  std::uint64_t sum = 0;
  // unordered-ok: addition commutes; no output depends on visit order
  for (const auto& [key, value] : copy) {
    sum += value;
  }
  return sum;
}
