// Fixture: a header that must produce zero findings.
#pragma once

#include <iosfwd>

#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

class ProperlyAnnotated {
 public:
  void bump() {
    flowrank::util::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  mutable flowrank::util::Mutex mutex_;
  int count_ FR_GUARDED_BY(mutex_) = 0;
};
