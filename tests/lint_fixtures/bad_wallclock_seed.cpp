// Fixture: trips exactly [wallclock-seed].
#include <chrono>

long wall_clock_seed() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
