// Fixture: trips exactly [random-device].
#include <random>

unsigned nondeterministic_seed() {
  std::random_device device;
  return device();
}
