// Fixture: trips exactly [pragma-once] (no include guard pragma).

inline int answer() { return 42; }
