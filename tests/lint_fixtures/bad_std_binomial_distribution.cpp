// Fixture: trips exactly [std-binomial-distribution].
#include <random>

unsigned long split(std::mt19937_64& engine) {
  std::binomial_distribution<unsigned long> dist(100, 0.5);
  return dist(engine);
}
