// Fixture: trips exactly [guarded-by-missing]: a util::Mutex member with
// no FR_GUARDED_BY/FR_REQUIRES naming what it protects.
#pragma once

#include "flowrank/util/sync.hpp"

class SilentlyLocked {
 public:
  void bump() {
    flowrank::util::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  mutable flowrank::util::Mutex mutex_;
  int count_ = 0;
};
