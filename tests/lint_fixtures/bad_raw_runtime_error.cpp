// Fixture: trips exactly [raw-runtime-error].
#include <stdexcept>

void fail() { throw std::runtime_error("not a flowrank::Error"); }
