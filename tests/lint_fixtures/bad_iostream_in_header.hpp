// Fixture: trips exactly [iostream-in-header].
#pragma once

#include <iostream>

inline void shout() { std::cout << "hello\n"; }
