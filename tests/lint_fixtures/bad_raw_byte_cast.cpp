// Fixture: serializing a struct by reinterpreting / memcpy-ing its
// object representation instead of writing explicit little-endian
// fields through util/bytes.hpp. Must fire raw-byte-cast (and only it).
#include <cstdint>
#include <cstring>
#include <vector>

struct Header {
  std::uint32_t magic = 0;
  std::uint64_t epoch = 0;
};

inline void serialize_header(const Header& header, std::vector<std::uint8_t>& out) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&header);
  out.insert(out.end(), bytes, bytes + sizeof(Header));
}

inline Header parse_header(const std::vector<std::uint8_t>& bytes) {
  Header header;
  std::memcpy(&header, bytes.data(), sizeof(Header));
  return header;
}
