// Fixture: trips exactly [unordered-iter]. The iteration order of an
// unordered container is implementation-defined; pushing it straight
// into output makes the bytes depend on the standard library.
#include <cstdint>
#include <unordered_map>
#include <vector>

std::vector<std::uint64_t> values_in_hash_order(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::unordered_map<std::uint64_t, std::uint64_t> copy = counts;
  std::vector<std::uint64_t> out;
  for (const auto& [key, value] : copy) {
    out.push_back(value);
  }
  return out;
}
