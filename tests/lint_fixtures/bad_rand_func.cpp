// Fixture: trips exactly [rand-func].
#include <cstdlib>

int hidden_global_state() { return rand() % 6; }
