// Violates exactly one rule: lgamma-signgam (std::lgamma writes the
// libm global `signgam`, racing across pool workers).
#include <cmath>

double log_gamma_of(double x) { return std::lgamma(x); }
