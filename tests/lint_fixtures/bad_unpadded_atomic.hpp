// Fixture: fires exactly the unpadded-atomic rule. An atomic member in a
// concurrency hot-path struct with neither alignas(...) padding nor a
// reviewed shared-cacheline-ok waiver.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

struct HotPathCounters {
  // Padded: fine.
  alignas(64) std::atomic<std::uint64_t> padded{0};
  // Waived: fine.
  std::atomic<std::uint64_t> waived{0};  // shared-cacheline-ok: test fixture

  // Neither padded nor waived (and far enough from the waiver above
  // that its comment is outside the two-line context window): the rule
  // must fire on the declaration below.
  std::atomic<std::uint64_t> bare{0};
};

}  // namespace lint_fixture
