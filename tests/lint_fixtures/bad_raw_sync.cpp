// Fixture: trips exactly [raw-sync]. Locking the analysis cannot see.
#include <mutex>

int counter = 0;

void bump() {
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  ++counter;
}
