// Tests for the trace-driven simulation engine: structural properties,
// count-path vs packet-path equivalence, and the paper's qualitative
// simulation findings at reduced scale.
#include <cmath>

#include <gtest/gtest.h>

#include "flowrank/sim/binned_sim.hpp"

namespace fp = flowrank::packet;
namespace ft = flowrank::trace;
namespace fsim = flowrank::sim;

namespace {

ft::FlowTrace make_test_trace(double duration_s = 60.0, double rate = 300.0,
                              std::uint64_t seed = 21) {
  auto cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, seed);
  cfg.duration_s = duration_s;
  cfg.flow_rate_per_s = rate;
  return ft::generate_flow_trace(cfg);
}

fsim::SimConfig make_sim_config() {
  fsim::SimConfig cfg;
  cfg.bin_seconds = 10.0;
  cfg.top_t = 5;
  cfg.sampling_rates = {0.01, 0.1, 0.5};
  cfg.runs = 10;
  cfg.seed = 3;
  return cfg;
}

}  // namespace

TEST(BinnedSim, ProducesSeriesPerRateAndBin) {
  const auto trace = make_test_trace();
  const auto cfg = make_sim_config();
  const auto result = fsim::run_binned_simulation(trace, cfg);
  ASSERT_EQ(result.series.size(), cfg.sampling_rates.size());
  for (std::size_t r = 0; r < result.series.size(); ++r) {
    EXPECT_DOUBLE_EQ(result.series[r].sampling_rate, cfg.sampling_rates[r]);
    ASSERT_EQ(result.series[r].bins.size(), 6u);  // 60 s / 10 s
    for (const auto& bin : result.series[r].bins) {
      EXPECT_EQ(bin.ranking.count(), static_cast<std::size_t>(cfg.runs));
      EXPECT_GT(bin.flows_in_bin, cfg.top_t);
    }
  }
}

TEST(BinnedSim, HigherSamplingRateRanksBetter) {
  const auto trace = make_test_trace();
  const auto result = fsim::run_binned_simulation(trace, make_sim_config());
  // Average the per-bin means; series are ordered 1%, 10%, 50%.
  std::vector<double> avg(result.series.size(), 0.0);
  for (std::size_t r = 0; r < result.series.size(); ++r) {
    for (const auto& bin : result.series[r].bins) avg[r] += bin.ranking.mean();
    avg[r] /= static_cast<double>(result.series[r].bins.size());
  }
  EXPECT_GT(avg[0], avg[1]);
  EXPECT_GT(avg[1], avg[2]);
}

TEST(BinnedSim, DetectionNoHarderThanRanking) {
  const auto trace = make_test_trace();
  const auto result = fsim::run_binned_simulation(trace, make_sim_config());
  for (const auto& series : result.series) {
    for (const auto& bin : series.bins) {
      EXPECT_LE(bin.detection.mean(), bin.ranking.mean() + 1e-12);
    }
  }
}

TEST(BinnedSim, RecallImprovesWithRate) {
  const auto trace = make_test_trace();
  const auto result = fsim::run_binned_simulation(trace, make_sim_config());
  double low = 0.0, high = 0.0;
  for (const auto& bin : result.series.front().bins) low += bin.recall.mean();
  for (const auto& bin : result.series.back().bins) high += bin.recall.mean();
  EXPECT_GT(high, low);
}

TEST(BinnedSim, DeterministicInSeed) {
  const auto trace = make_test_trace();
  const auto cfg = make_sim_config();
  const auto a = fsim::run_binned_simulation(trace, cfg);
  const auto b = fsim::run_binned_simulation(trace, cfg);
  for (std::size_t r = 0; r < a.series.size(); ++r) {
    for (std::size_t bin = 0; bin < a.series[r].bins.size(); ++bin) {
      EXPECT_DOUBLE_EQ(a.series[r].bins[bin].ranking.mean(),
                       b.series[r].bins[bin].ranking.mean());
    }
  }
}

TEST(BinnedSim, CountPathConsistentWithPacketPath) {
  // The two execution paths induce the same distribution; compare the
  // per-bin metric means of the count path against packet-path runs.
  const auto trace = make_test_trace(/*duration_s=*/40.0, /*rate=*/150.0);
  fsim::SimConfig cfg;
  cfg.bin_seconds = 10.0;
  cfg.top_t = 5;
  cfg.sampling_rates = {0.2};
  cfg.runs = 40;
  cfg.seed = 9;
  const auto counts = fsim::run_binned_simulation(trace, cfg);

  const int packet_runs = 40;
  std::vector<flowrank::numeric::RunningStats> packet_bins(4);
  for (int run = 0; run < packet_runs; ++run) {
    const auto metrics = fsim::run_packet_level_once(trace, 0.2, cfg, 1000 + run);
    for (std::size_t b = 0; b < packet_bins.size() && b < metrics.size(); ++b) {
      packet_bins[b].add(metrics[b].ranking_swapped);
    }
  }
  for (std::size_t b = 0; b < packet_bins.size(); ++b) {
    const auto& fast = counts.series[0].bins[b].ranking;
    const double band = 4.0 * (fast.stddev() + packet_bins[b].stddev()) /
                            std::sqrt(static_cast<double>(packet_runs)) +
                        0.35 * std::max(1.0, fast.mean());
    EXPECT_NEAR(fast.mean(), packet_bins[b].mean(), band) << "bin " << b;
  }
}

namespace {

/// Hand-built trace of single-packet flows at exact timestamps (a
/// single-packet flow's packet lands at to_ns(start_s) deterministically,
/// with no RNG involved).
ft::FlowTrace make_point_trace(double duration_s,
                               const std::vector<double>& starts) {
  ft::FlowTrace trace;
  trace.config = ft::FlowTraceConfig::sprint_5tuple(1.5, 1);
  trace.config.duration_s = duration_s;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    fp::FlowRecord flow;
    flow.tuple.src_ip = static_cast<std::uint32_t>(i + 1);
    flow.tuple.dst_ip = 0x0A000001;
    flow.tuple.protocol = fp::Protocol::kUdp;
    flow.start_s = starts[i];
    flow.duration_s = 0.0;
    flow.packets = 1;
    flow.bytes = 500;
    trace.flows.push_back(flow);
  }
  return trace;
}

}  // namespace

// Regression (bin-edge truncation): the packet path used
// static_cast<int64>(bin_seconds * 1e9), which truncates whenever the
// double product lands just under an integer (1.001 s -> 1 000 999 999 ns
// instead of 1 001 000 000), so its integer bin edges drifted one ns per
// bin away from the double-division edges of bin_flow_counts. bin_ns must
// round — trace::bin_length_ns — so a packet at 3.002999998 s stays in
// bin 2 of 1.001-s bins instead of leaking into bin 3.
TEST(BinnedSim, PacketPathBinEdgesDoNotTruncate) {
  // Flows at 2.5 s and 3.002999998 s (bin 2), 3.5 s (bin 3).
  const auto trace = make_point_trace(4.5, {2.5, 3.002999998, 3.5});
  fsim::SimConfig cfg;
  cfg.bin_seconds = 1.001;
  cfg.top_t = 1;
  cfg.sampling_rates = {1.0};
  cfg.seed = 2;
  const auto out = fsim::run_packet_level_once(trace, 1.0, cfg, 5);
  ASSERT_EQ(out.size(), 5u);  // ceil(4.5 / 1.001)
  // t = 1, so ranking_pairs = N - 1 reveals each bin's flow population.
  EXPECT_DOUBLE_EQ(out[2].ranking_pairs, 1.0);  // two flows in bin 2
  EXPECT_DOUBLE_EQ(out[3].ranking_pairs, 0.0);  // one flow in bin 3
}

// The ISSUE's canonical sub-second interval: with bin_seconds = 0.3 the
// packet path's edges must agree with the double-division edges exactly
// (a packet 2 ns below the 0.9 s edge belongs to bin 2, not bin 3).
TEST(BinnedSim, PacketPathBinEdgesMatchDoubleDivisionEdgesAt300ms) {
  EXPECT_EQ(ft::bin_length_ns(0.3), 300'000'000);
  const auto trace = make_point_trace(1.21, {0.85, 0.899999998, 0.95});
  fsim::SimConfig cfg;
  cfg.bin_seconds = 0.3;
  cfg.top_t = 1;
  cfg.sampling_rates = {1.0};
  cfg.seed = 2;
  const auto out = fsim::run_packet_level_once(trace, 1.0, cfg, 5);
  ASSERT_EQ(out.size(), 5u);  // ceil(1.21 / 0.3)
  EXPECT_DOUBLE_EQ(out[2].ranking_pairs, 1.0);  // two flows in bin 2
  EXPECT_DOUBLE_EQ(out[3].ranking_pairs, 0.0);  // one flow in bin 3
}

// Regression (final-bin flush drop): a packet landing exactly at
// duration_s classifies one past the last bin; it must be clamped into
// the final bin (like bin_counts' last_bin clamp), not silently dropped
// with the whole final table flush.
TEST(BinnedSim, PacketAtTraceEndCountsInFinalBin) {
  // One flow mid-bin-5 plus two flows exactly at the trace end (3.0 s).
  const auto trace = make_point_trace(3.0, {2.7, 3.0, 3.0});
  fsim::SimConfig cfg;
  cfg.bin_seconds = 0.5;
  cfg.top_t = 1;
  cfg.sampling_rates = {1.0};
  cfg.seed = 2;
  const auto out = fsim::run_packet_level_once(trace, 1.0, cfg, 5);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_DOUBLE_EQ(out[5].ranking_pairs, 2.0);  // all three flows present
}

TEST(BinnedSim, SkipsBinsWithTooFewFlows) {
  // A near-empty trace: bins with fewer flows than top_t keep empty stats.
  auto cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, 5);
  cfg.duration_s = 30.0;
  cfg.flow_rate_per_s = 0.1;  // ~3 flows over the whole trace
  const auto trace = ft::generate_flow_trace(cfg);
  fsim::SimConfig sim_cfg = make_sim_config();
  sim_cfg.top_t = 10;
  const auto result = fsim::run_binned_simulation(trace, sim_cfg);
  for (const auto& series : result.series) {
    for (const auto& bin : series.bins) {
      if (bin.flows_in_bin < sim_cfg.top_t) {
        EXPECT_EQ(bin.ranking.count(), 0u);
      }
    }
  }
}

TEST(BinnedSim, InvalidConfigurations) {
  const auto trace = make_test_trace(10.0, 50.0);
  auto cfg = make_sim_config();
  cfg.bin_seconds = 0.0;
  EXPECT_THROW((void)fsim::run_binned_simulation(trace, cfg), std::invalid_argument);
  cfg = make_sim_config();
  cfg.runs = 0;
  EXPECT_THROW((void)fsim::run_binned_simulation(trace, cfg), std::invalid_argument);
  cfg = make_sim_config();
  cfg.sampling_rates = {1.5};
  EXPECT_THROW((void)fsim::run_binned_simulation(trace, cfg), std::invalid_argument);
  cfg = make_sim_config();
  EXPECT_THROW((void)fsim::run_packet_level_once(trace, 0.0, cfg, 1),
               std::invalid_argument);
}
