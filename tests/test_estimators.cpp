// Tests for the inversion estimators, heavy-hitter trackers, TCP-seq size
// estimation and the adaptive sampling-rate controller.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "flowrank/dist/pareto.hpp"
#include "flowrank/estimators/adaptive_rate.hpp"
#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/estimators/inversion.hpp"
#include "flowrank/estimators/tcp_seq.hpp"
#include "flowrank/numeric/stats.hpp"
#include "flowrank/util/rng.hpp"

namespace fe = flowrank::estimators;
namespace fd = flowrank::dist;
namespace fp = flowrank::packet;

// ---------------------------------------------------------------------------
// Inversion
// ---------------------------------------------------------------------------

TEST(Inversion, ScaledEstimateIsUnbiased) {
  auto engine = flowrank::util::make_engine(41);
  const std::uint64_t true_size = 5000;
  const double p = 0.01;
  std::binomial_distribution<std::uint64_t> thin(true_size, p);
  double acc = 0.0;
  int covered = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const auto est = fe::scaled_size_estimate(thin(engine), p);
    acc += est.estimate;
    if (est.ci95_low <= true_size && true_size <= est.ci95_high) ++covered;
  }
  EXPECT_NEAR(acc / trials, static_cast<double>(true_size), 50.0);
  // 95% CI coverage within a few percent.
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.03);
}

TEST(Inversion, MissedFlowProbabilityMatchesSimulation) {
  const auto pareto = fd::Pareto::from_mean(9.6, 1.5);
  const double p = 0.01;
  const double analytic = fe::missed_flow_probability(pareto, p);
  auto engine = flowrank::util::make_engine(17);
  int missed = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, std::round(pareto.sample(engine))));
    std::binomial_distribution<std::uint64_t> thin(size, p);
    if (thin(engine) == 0) ++missed;
  }
  const double empirical = static_cast<double>(missed) / trials;
  EXPECT_NEAR(analytic, empirical, 0.01);
}

TEST(Inversion, MissedFlowProbabilityLimits) {
  const auto pareto = fd::Pareto::from_mean(9.6, 1.5);
  EXPECT_DOUBLE_EQ(fe::missed_flow_probability(pareto, 1.0), 0.0);
  EXPECT_GT(fe::missed_flow_probability(pareto, 0.001),
            fe::missed_flow_probability(pareto, 0.1));
}

TEST(Inversion, PopulationEstimateRecoversN) {
  const auto pareto = fd::Pareto::from_mean(9.6, 1.5);
  const double p = 0.02;
  auto engine = flowrank::util::make_engine(23);
  const int n = 100000;
  std::uint64_t seen = 0, sampled_packets = 0;
  for (int i = 0; i < n; ++i) {
    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, std::round(pareto.sample(engine))));
    std::binomial_distribution<std::uint64_t> thin(size, p);
    const auto s = thin(engine);
    if (s > 0) {
      ++seen;
      sampled_packets += s;
    }
  }
  const auto estimate = fe::estimate_population(seen, sampled_packets, p, pareto);
  EXPECT_NEAR(estimate.total_flows, n, 0.05 * n);
  EXPECT_NEAR(estimate.mean_flow_packets, 9.6, 2.5);
}

TEST(Inversion, InvalidArguments) {
  const auto pareto = fd::Pareto::from_mean(9.6, 1.5);
  EXPECT_THROW((void)fe::scaled_size_estimate(5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fe::missed_flow_probability(pareto, 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)fe::estimate_population(10, 100, -0.1, pareto),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Heavy-hitter trackers
// ---------------------------------------------------------------------------

namespace {
fp::FlowKey key_of(std::uint64_t id) { return fp::FlowKey{0, id}; }
}  // namespace

TEST(SampleAndHold, CountsHeldFlowsExactlyAfterEntry) {
  fe::SampleAndHold tracker(1.0, 0, 1);  // h=1: every flow held immediately
  for (int i = 0; i < 7; ++i) tracker.offer(key_of(1));
  const auto flows = tracker.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0].estimated_packets, 7.0);  // correction = 0 at h=1
}

TEST(SampleAndHold, EstimateRoughlyUnbiasedForLargeFlows) {
  const double h = 0.05;
  flowrank::numeric::RunningStats estimates;
  for (int trial = 0; trial < 300; ++trial) {
    fe::SampleAndHold tracker(h, 0, 100 + trial);
    for (int i = 0; i < 500; ++i) tracker.offer(key_of(9));
    for (const auto& f : tracker.flows()) estimates.add(f.estimated_packets);
  }
  // Conditional on being held, estimate corrects the geometric miss.
  EXPECT_NEAR(estimates.mean(), 500.0, 25.0);
}

TEST(SampleAndHold, RespectsCapacity) {
  fe::SampleAndHold tracker(1.0, 2, 3);
  tracker.offer(key_of(1));
  tracker.offer(key_of(2));
  tracker.offer(key_of(3));  // table full
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_EQ(tracker.overflow_drops(), 1u);
}

TEST(SampleAndHold, InvalidArguments) {
  EXPECT_THROW(fe::SampleAndHold(0.0, 0, 1), std::invalid_argument);
  EXPECT_THROW(fe::SampleAndHold(1.5, 0, 1), std::invalid_argument);
}

TEST(SpaceSaving, ExactWhenCapacitySuffices) {
  fe::SpaceSavingTracker tracker(10);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    for (std::uint64_t i = 0; i < id * 10; ++i) tracker.offer(key_of(id));
  }
  const auto top = tracker.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key.lo, 5u);
  EXPECT_DOUBLE_EQ(top[0].estimated_packets, 50.0);
  EXPECT_DOUBLE_EQ(top[0].error_bound, 0.0);
}

TEST(SpaceSaving, ErrorBoundHolds) {
  // Adversarial-ish stream with eviction churn: estimates overcount by at
  // most error_bound, and true heavy hitters survive.
  fe::SpaceSavingTracker tracker(8);
  std::map<std::uint64_t, std::uint64_t> truth;
  auto engine = flowrank::util::make_engine(55);
  std::uniform_int_distribution<std::uint64_t> small(10, 200);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t id = i % 3 == 0 ? 1 + (i % 2) : small(engine);
    tracker.offer(key_of(id));
    ++truth[id];
  }
  for (const auto& f : tracker.flows()) {
    const auto true_count = truth[f.key.lo];
    EXPECT_GE(f.estimated_packets + 1e-9, static_cast<double>(true_count));
    EXPECT_LE(f.estimated_packets - f.error_bound,
              static_cast<double>(true_count) + 1e-9);
  }
  // The two genuine heavy hitters are tracked.
  const auto top = tracker.top(2);
  EXPECT_TRUE((top[0].key.lo == 1 && top[1].key.lo == 2) ||
              (top[0].key.lo == 2 && top[1].key.lo == 1));
}

TEST(SpaceSaving, InvalidCapacity) {
  EXPECT_THROW(fe::SpaceSavingTracker(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TCP sequence estimation
// ---------------------------------------------------------------------------

TEST(TcpSeq, SeqPathBeatsScalingForSampledTcpFlows) {
  // A 10000-packet TCP flow sampled at 1%: the seq span pins the size.
  auto engine = flowrank::util::make_engine(61);
  const std::uint64_t size = 10000;
  const double p = 0.01;
  const std::uint32_t pkt_bytes = 500;
  flowrank::numeric::RunningStats seq_err, scale_err;
  for (int trial = 0; trial < 400; ++trial) {
    flowrank::flowtable::FlowCounter counter;
    counter.has_tcp_seq = false;
    std::bernoulli_distribution coin(p);
    for (std::uint64_t i = 0; i < size; ++i) {
      if (!coin(engine)) continue;
      ++counter.packets;
      const std::uint32_t seq = static_cast<std::uint32_t>(i) * pkt_bytes;
      counter.min_tcp_seq = std::min(counter.min_tcp_seq, seq);
      counter.max_tcp_seq = std::max(counter.max_tcp_seq, seq);
      counter.has_tcp_seq = true;
    }
    if (counter.packets < 2) continue;
    const auto seq_est = fe::estimate_size_tcp_seq(counter, p, pkt_bytes);
    ASSERT_TRUE(seq_est.used_seq);
    seq_err.add(std::abs(seq_est.packets - static_cast<double>(size)));
    scale_err.add(std::abs(static_cast<double>(counter.packets) / p -
                           static_cast<double>(size)));
  }
  // Sequence-based estimates are far tighter than s/p scaling.
  EXPECT_LT(seq_err.mean() * 2.0, scale_err.mean());
  EXPECT_LT(seq_err.mean(), 350.0);  // head+tail geometric slack ~2(1-p)/p
}

TEST(TcpSeq, FallsBackWithoutSeqInfo) {
  flowrank::flowtable::FlowCounter counter;
  counter.packets = 7;
  counter.has_tcp_seq = false;
  const auto est = fe::estimate_size_tcp_seq(counter, 0.1, 500);
  EXPECT_FALSE(est.used_seq);
  EXPECT_DOUBLE_EQ(est.packets, 70.0);
}

TEST(TcpSeq, FallsBackOnSinglePacket) {
  flowrank::flowtable::FlowCounter counter;
  counter.packets = 1;
  counter.has_tcp_seq = true;
  counter.min_tcp_seq = counter.max_tcp_seq = 1500;
  const auto est = fe::estimate_size_tcp_seq(counter, 0.5, 500);
  EXPECT_FALSE(est.used_seq);
}

TEST(TcpSeq, InvalidArguments) {
  flowrank::flowtable::FlowCounter counter;
  EXPECT_THROW((void)fe::estimate_size_tcp_seq(counter, 0.0, 500),
               std::invalid_argument);
  EXPECT_THROW((void)fe::estimate_size_tcp_seq(counter, 0.5, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Adaptive rate controller
// ---------------------------------------------------------------------------

namespace {

/// Simulates one observed interval: N flows Pareto(beta), thinned at rate.
std::vector<std::uint64_t> observe_interval(int n, double beta, double rate,
                                            std::uint64_t seed) {
  auto engine = flowrank::util::make_engine(seed);
  const auto pareto = fd::Pareto::from_mean(9.6, beta);
  std::vector<std::uint64_t> sampled;
  for (int i = 0; i < n; ++i) {
    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, std::round(pareto.sample(engine))));
    std::binomial_distribution<std::uint64_t> thin(size, rate);
    const auto s = thin(engine);
    if (s > 0) sampled.push_back(s);
  }
  return sampled;
}

}  // namespace

TEST(AdaptiveRate, RecoversTrafficCharacteristics) {
  fe::AdaptiveRateConfig cfg;
  cfg.ema_weight = 1.0;
  fe::AdaptiveRateController controller(cfg);
  const auto sampled = observe_interval(200000, 1.5, 0.05, 71);
  const auto decision = controller.observe(sampled, 0.05);
  EXPECT_NEAR(decision.estimated_beta, 1.5, 0.4);
  // The population estimate composes a seen-flow-conditioned mean with a
  // fitted Pareto, so it is order-of-magnitude, not unbiased.
  EXPECT_GT(decision.estimated_flows, 200000.0 / 4.0);
  EXPECT_LT(decision.estimated_flows, 200000.0 * 4.0);
  EXPECT_GE(decision.next_rate, cfg.min_rate);
  EXPECT_LE(decision.next_rate, cfg.max_rate);
}

TEST(AdaptiveRate, MoreFlowsAllowLowerRate) {
  fe::AdaptiveRateConfig cfg;
  cfg.ema_weight = 1.0;
  fe::AdaptiveRateController small_ctl(cfg), large_ctl(cfg);
  const auto small_obs = observe_interval(20000, 1.5, 0.05, 73);
  const auto large_obs = observe_interval(400000, 1.5, 0.05, 74);
  const auto small_decision = small_ctl.observe(small_obs, 0.05);
  const auto large_decision = large_ctl.observe(large_obs, 0.05);
  EXPECT_LE(large_decision.next_rate, small_decision.next_rate + 1e-9);
}

TEST(AdaptiveRate, SmoothingDampensJumps) {
  fe::AdaptiveRateConfig cfg;
  cfg.ema_weight = 0.25;
  fe::AdaptiveRateController controller(cfg);
  const double initial = controller.current_rate();
  const auto sampled = observe_interval(300000, 1.5, 0.05, 75);
  const auto decision = controller.observe(sampled, 0.05);
  // One observation moves at most 25% of the way to the raw plan.
  EXPECT_GT(decision.next_rate, 0.5 * initial);
}

TEST(AdaptiveRate, InvalidInputs) {
  fe::AdaptiveRateConfig bad;
  bad.min_rate = 0.9;
  bad.max_rate = 0.5;
  EXPECT_THROW(fe::AdaptiveRateController{bad}, std::invalid_argument);
  fe::AdaptiveRateController controller{fe::AdaptiveRateConfig{}};
  std::vector<std::uint64_t> empty;
  EXPECT_THROW((void)controller.observe(empty, 0.1), std::invalid_argument);
  std::vector<std::uint64_t> few{1, 2, 3};
  EXPECT_THROW((void)controller.observe(few, 0.1), std::invalid_argument);
  std::vector<std::uint64_t> ok(100, 5);
  EXPECT_THROW((void)controller.observe(ok, 0.0), std::invalid_argument);
}
