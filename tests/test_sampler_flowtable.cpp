// Tests for packet samplers, smart sampling, flow table and binning.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/sampler/smart_sampler.hpp"
#include "flowrank/numeric/stats.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"

namespace fp = flowrank::packet;
namespace fs = flowrank::sampler;
namespace ff = flowrank::flowtable;

namespace {

fp::PacketRecord make_packet(std::int64_t ts_ns, std::uint32_t src = 1,
                             fp::Protocol proto = fp::Protocol::kTcp,
                             std::uint32_t seq = 0) {
  fp::PacketRecord pkt;
  pkt.timestamp_ns = ts_ns;
  pkt.tuple = fp::FiveTuple{src, 2, 10, 80, proto};
  pkt.size_bytes = 500;
  pkt.tcp_seq = seq;
  return pkt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------------

class SamplerRateCase : public ::testing::TestWithParam<double> {};

TEST_P(SamplerRateCase, BernoulliHitsExpectedRate) {
  const double p = GetParam();
  fs::BernoulliSampler sampler(p, /*seed=*/1);
  const int trials = 200000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    if (sampler.offer(make_packet(i))) ++hits;
  }
  const double sigma = std::sqrt(p * (1 - p) * trials);
  EXPECT_NEAR(hits, p * trials, 5.0 * sigma + 1.0) << p;
  EXPECT_DOUBLE_EQ(sampler.rate(), p);
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplerRateCase,
                         ::testing::Values(0.001, 0.01, 0.1, 0.5, 0.9));

TEST(Samplers, PeriodicSelectsExactFraction) {
  fs::PeriodicSampler sampler(100, /*phase=*/3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    const bool selected = sampler.offer(make_packet(i));
    if (selected) {
      ++hits;
      EXPECT_EQ(i % 100, 3);
    }
  }
  EXPECT_EQ(hits, 100);
}

TEST(Samplers, PeriodicResetRestartsPhase) {
  fs::PeriodicSampler sampler(10, 0);
  EXPECT_TRUE(sampler.offer(make_packet(0)));
  EXPECT_FALSE(sampler.offer(make_packet(1)));
  sampler.reset();
  EXPECT_TRUE(sampler.offer(make_packet(2)));
}

TEST(Samplers, StratifiedSelectsExactlyOnePerGroup) {
  fs::StratifiedSampler sampler(50, /*seed=*/2);
  for (int group = 0; group < 200; ++group) {
    int hits = 0;
    for (int i = 0; i < 50; ++i) {
      if (sampler.offer(make_packet(group * 50 + i))) ++hits;
    }
    EXPECT_EQ(hits, 1) << "group " << group;
  }
}

TEST(Samplers, FlowSamplingIsAllOrNothing) {
  fs::FlowSampler sampler(0.5, fp::FlowDefinition::kFiveTuple, /*seed=*/3);
  std::map<std::uint32_t, bool> decision;
  for (int i = 0; i < 5000; ++i) {
    const auto src = static_cast<std::uint32_t>(i % 100);
    const bool selected = sampler.offer(make_packet(i, src));
    auto [it, fresh] = decision.try_emplace(src, selected);
    if (!fresh) {
      EXPECT_EQ(it->second, selected) << "flow " << src << " decision flipped";
    }
  }
  // Roughly half the flows selected.
  int selected_flows = 0;
  for (const auto& [src, sel] : decision) selected_flows += sel;
  EXPECT_NEAR(selected_flows, 50, 20);
}

TEST(Samplers, FlowSamplingEdgeRates) {
  fs::FlowSampler none(0.0, fp::FlowDefinition::kFiveTuple, 1);
  fs::FlowSampler all(1.0, fp::FlowDefinition::kFiveTuple, 1);
  int none_hits = 0, all_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    none_hits += none.offer(make_packet(i, static_cast<std::uint32_t>(i)));
    all_hits += all.offer(make_packet(i, static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(none_hits, 0);
  EXPECT_EQ(all_hits, 1000);
}

TEST(Samplers, ThinCountMatchesBinomialMoments) {
  auto engine = flowrank::util::make_engine(5);
  const std::uint64_t n = 1000;
  const double p = 0.1;
  flowrank::numeric::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(fs::thin_count(n, p, engine)));
  }
  EXPECT_NEAR(stats.mean(), n * p, 1.0);
  EXPECT_NEAR(stats.variance(), n * p * (1 - p), 5.0);
  EXPECT_EQ(fs::thin_count(0, 0.5, engine), 0u);
  EXPECT_EQ(fs::thin_count(100, 0.0, engine), 0u);
  EXPECT_EQ(fs::thin_count(100, 1.0, engine), 100u);
}

TEST(Samplers, InvalidArguments) {
  EXPECT_THROW(fs::BernoulliSampler(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(fs::BernoulliSampler(1.1, 1), std::invalid_argument);
  EXPECT_THROW(fs::PeriodicSampler(0), std::invalid_argument);
  EXPECT_THROW(fs::PeriodicSampler(10, 10), std::invalid_argument);
  EXPECT_THROW(fs::StratifiedSampler(0, 1), std::invalid_argument);
  EXPECT_THROW(fs::FlowSampler(2.0, fp::FlowDefinition::kFiveTuple, 1),
               std::invalid_argument);
  auto engine = flowrank::util::make_engine(1);
  EXPECT_THROW((void)fs::thin_count(10, -0.5, engine), std::invalid_argument);
}

TEST(SmartSampler, KeepsAllLargeFlows) {
  fs::SmartSampler smart(/*z=*/100.0, /*seed=*/6);
  std::vector<fp::FlowRecord> flows(50);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].packets = 100 + i;  // all at or above threshold
  }
  const auto sampled = smart.sample(flows);
  EXPECT_EQ(sampled.size(), flows.size());
  for (const auto& s : sampled) {
    EXPECT_DOUBLE_EQ(s.estimated_packets, static_cast<double>(s.flow.packets));
  }
}

TEST(SmartSampler, SmallFlowEstimatesAreUnbiased) {
  // E[estimate] = P(select) * z = (x/z) * z = x for x < z.
  fs::SmartSampler smart(/*z=*/200.0, /*seed=*/7);
  std::vector<fp::FlowRecord> flows(40000);
  for (auto& f : flows) f.packets = 50;
  const auto sampled = smart.sample(flows);
  const double total_estimate =
      static_cast<double>(sampled.size()) * 200.0;  // each estimate is z
  const double true_total = 40000.0 * 50.0;
  EXPECT_NEAR(total_estimate / true_total, 1.0, 0.05);
}

TEST(SmartSampler, SelectionProbabilityShape) {
  fs::SmartSampler smart(100.0, 8);
  EXPECT_DOUBLE_EQ(smart.selection_probability(50.0), 0.5);
  EXPECT_DOUBLE_EQ(smart.selection_probability(100.0), 1.0);
  EXPECT_DOUBLE_EQ(smart.selection_probability(500.0), 1.0);
  EXPECT_THROW(fs::SmartSampler(0.0, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Flow table
// ---------------------------------------------------------------------------

TEST(FlowTable, AccumulatesPerFlowCounters) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  for (int i = 0; i < 5; ++i) table.add(make_packet(i * 1000, /*src=*/1));
  for (int i = 0; i < 3; ++i) table.add(make_packet(i * 1000 + 10, /*src=*/2));
  EXPECT_EQ(table.size(), 2u);
  const auto flows = table.active();
  std::uint64_t total = 0;
  for (const auto& f : flows) {
    total += f.packets;
    EXPECT_EQ(f.bytes, f.packets * 500);
    EXPECT_LE(f.first_ns, f.last_ns);
  }
  EXPECT_EQ(total, 8u);
}

TEST(FlowTable, TracksTcpSequenceSpan) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  table.add(make_packet(0, 1, fp::Protocol::kTcp, 1500));
  table.add(make_packet(10, 1, fp::Protocol::kTcp, 500));
  table.add(make_packet(20, 1, fp::Protocol::kTcp, 9000));
  const auto flows = table.active();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].has_tcp_seq);
  EXPECT_EQ(flows[0].min_tcp_seq, 500u);
  EXPECT_EQ(flows[0].max_tcp_seq, 9000u);
}

TEST(FlowTable, UdpFlowsHaveNoSeq) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  table.add(make_packet(0, 1, fp::Protocol::kUdp));
  EXPECT_FALSE(table.active()[0].has_tcp_seq);
}

TEST(FlowTable, IdleTimeoutSplitsSubflows) {
  ff::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple,
                              /*idle_timeout_ns=*/1000000};
  ff::FlowTable table(opts);
  table.add(make_packet(0));
  table.add(make_packet(500000));            // same subflow
  table.add(make_packet(500000 + 2000000));  // gap > timeout: new subflow
  EXPECT_EQ(table.completed().size(), 1u);
  EXPECT_EQ(table.completed()[0].packets, 2u);
  EXPECT_EQ(table.size(), 1u);
  const auto all = table.all();
  EXPECT_EQ(all.size(), 2u);
}

TEST(FlowTable, AggregatesByPrefix24) {
  ff::FlowTable table({fp::FlowDefinition::kDstPrefix24, 0});
  auto pkt_a = make_packet(0, 1);
  pkt_a.tuple.dst_ip = 0x0A0B0C01;
  auto pkt_b = make_packet(1, 2);
  pkt_b.tuple.dst_ip = 0x0A0B0C55;  // same /24
  table.add(pkt_a);
  table.add(pkt_b);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.active()[0].packets, 2u);
}

TEST(FlowTable, ClearResetsEverything) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 100});
  table.add(make_packet(0));
  table.add(make_packet(1000));  // split
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.completed().empty());
}

TEST(TopK, OrdersBySizeWithDeterministicTies) {
  std::vector<ff::FlowCounter> flows(5);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].key = fp::FlowKey{0, i};
    flows[i].packets = i == 2 ? 10 : 5;
  }
  const auto top = ff::top_k(flows, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].packets, 10u);
  EXPECT_EQ(top[1].key.lo, 0u);  // tie broken by key
  EXPECT_EQ(top[2].key.lo, 1u);
  // t larger than input returns all, sorted.
  EXPECT_EQ(ff::top_k(flows, 50).size(), flows.size());
}

TEST(BinnedClassifier, FlushesPerBinAndTruncatesFlows) {
  const std::int64_t bin_ns = 1000000000;  // 1 s
  std::map<std::size_t, std::uint64_t> bin_packets;
  ff::BinnedClassifier classifier(
      {fp::FlowDefinition::kFiveTuple, 0}, bin_ns,
      [&](std::size_t bin, std::vector<ff::FlowCounter> flows) {
        for (const auto& f : flows) bin_packets[bin] += f.packets;
      });
  // One flow spanning three bins: truncation splits its count across bins.
  for (int i = 0; i < 30; ++i) classifier.add(make_packet(i * 100000000LL));
  classifier.finish();
  EXPECT_EQ(bin_packets.size(), 3u);
  EXPECT_EQ(bin_packets[0], 10u);
  EXPECT_EQ(bin_packets[1], 10u);
  EXPECT_EQ(bin_packets[2], 10u);
}

TEST(BinnedClassifier, EmitsEmptyBinsBetweenActivity) {
  std::vector<std::size_t> flushed;
  ff::BinnedClassifier classifier(
      {fp::FlowDefinition::kFiveTuple, 0}, 1000,
      [&](std::size_t bin, std::vector<ff::FlowCounter>) { flushed.push_back(bin); });
  classifier.add(make_packet(100));
  classifier.add(make_packet(5500));  // skips bins 1-4
  classifier.finish();
  ASSERT_EQ(flushed.size(), 6u);
  EXPECT_EQ(flushed.front(), 0u);
  EXPECT_EQ(flushed.back(), 5u);
}

TEST(BinnedClassifier, InvalidConstruction) {
  EXPECT_THROW(ff::BinnedClassifier({}, 0, [](std::size_t, auto) {}),
               std::invalid_argument);
  EXPECT_THROW(ff::BinnedClassifier({}, 100, nullptr), std::invalid_argument);
}
