// Tests for the continuous monitor loop and its fault-injection harness.
//
// The load-bearing contract: with faults disabled, alpha = 1 and the
// kBlock overload policy, MonitorLoop's per-window results are
// bit-identical to the batch packet path (stream -> BernoulliSampler ->
// per-bin counts) at ANY shard count. The reference below replays that
// batch path literally and the tests assert exact double equality.
//
// Suite names matter: `Monitor*` and `FaultInjection*` are part of the
// CI sanitizer gtest filters (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "flowrank/monitor/monitor_loop.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/fault_injection.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/error.hpp"

namespace fm = flowrank::monitor;
namespace fp = flowrank::packet;
namespace fs = flowrank::sampler;
namespace ft = flowrank::trace;

namespace {

ft::FlowTraceConfig small_trace(double duration_s, double flow_rate,
                                std::uint64_t seed) {
  auto cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, seed);
  cfg.duration_s = duration_s;
  cfg.flow_rate_per_s = flow_rate;
  return cfg;
}

std::shared_ptr<const ft::TraceSource> fixed_source(
    const ft::FlowTrace& trace, const std::string& label) {
  return std::make_shared<ft::FixedTraceSource>(trace, label);
}

/// The batch packet path, replayed literally: same stream, same sampler,
/// same batch size as MonitorLoop. Per-window sampled packet counts per
/// flow key.
using WindowCounts = std::map<std::size_t, std::map<fp::FlowKey, std::uint64_t>>;

WindowCounts batch_path_window_counts(const ft::FlowTrace& trace, double rate,
                                      std::uint64_t seed, double window_s) {
  const std::int64_t window_ns = ft::bin_length_ns(window_s);
  ft::PacketStream stream(trace);
  fs::BernoulliSampler sampler(rate, seed);
  std::vector<fp::PacketRecord> batch;
  std::vector<fp::PacketRecord> selected;
  WindowCounts counts;
  while (stream.next_batch(batch, 4096) > 0) {
    sampler.select_into(batch, selected);
    for (const fp::PacketRecord& pkt : selected) {
      const auto w = static_cast<std::size_t>(pkt.timestamp_ns / window_ns);
      ++counts[w][fp::make_flow_key(pkt.tuple, fp::FlowDefinition::kFiveTuple)];
    }
  }
  return counts;
}

/// Canonical top-t of one window's counts, inverted by the sampling rate
/// exactly the way the monitor does it (double division, no rounding).
std::vector<fm::TopFlow> expected_top(
    const std::map<fp::FlowKey, std::uint64_t>& window, double rate,
    std::size_t t) {
  std::vector<fm::TopFlow> all;
  all.reserve(window.size());
  for (const auto& [key, count] : window) {
    all.push_back({key, static_cast<double>(count) / rate});
  }
  std::sort(all.begin(), all.end(),
            [](const fm::TopFlow& a, const fm::TopFlow& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.key < b.key;
            });
  if (all.size() > t) all.resize(t);
  return all;
}

void expect_same_snapshots(const std::vector<fm::MonitorSnapshot>& a,
                           const std::vector<fm::MonitorSnapshot>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("snapshot " + std::to_string(i));
    EXPECT_EQ(a[i].window, b[i].window);
    EXPECT_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].tracked_flows, b[i].tracked_flows);
    EXPECT_EQ(a[i].window_flows, b[i].window_flows);
    EXPECT_EQ(a[i].window_packets, b[i].window_packets);
    EXPECT_EQ(a[i].churn_entered, b[i].churn_entered);
    EXPECT_EQ(a[i].churn_exited, b[i].churn_exited);
    EXPECT_EQ(a[i].rank_moves, b[i].rank_moves);
    EXPECT_EQ(a[i].effective_rate, b[i].effective_rate);
    ASSERT_EQ(a[i].top.size(), b[i].top.size());
    for (std::size_t r = 0; r < a[i].top.size(); ++r) {
      EXPECT_EQ(a[i].top[r].key, b[i].top[r].key) << "rank " << r;
      EXPECT_EQ(a[i].top[r].estimate, b[i].top[r].estimate) << "rank " << r;
    }
  }
}

std::vector<fm::MonitorSnapshot> run_collecting(
    std::shared_ptr<const ft::TraceSource> source, fm::MonitorConfig config,
    fm::MonitorReport* report_out = nullptr) {
  fm::MonitorLoop loop(std::move(source), config);
  std::vector<fm::MonitorSnapshot> snaps;
  const fm::MonitorReport report =
      loop.run([&](const fm::MonitorSnapshot& snap) { snaps.push_back(snap); });
  if (report_out != nullptr) *report_out = report;
  return snaps;
}

}  // namespace

TEST(MonitorLoop, RejectsBadConfigs) {
  const auto trace = ft::generate_flow_trace(small_trace(2.0, 20.0, 1));
  const auto source = fixed_source(trace, "tiny");
  EXPECT_THROW(fm::MonitorLoop(nullptr, {}), std::invalid_argument);
  fm::MonitorConfig bad;
  bad.window_s = 0.0;
  EXPECT_THROW(fm::MonitorLoop(source, bad), std::invalid_argument);
  bad = {};
  bad.sampling_rate = 0.0;
  EXPECT_THROW(fm::MonitorLoop(source, bad), std::invalid_argument);
  bad = {};
  bad.ewma_alpha = 1.5;
  EXPECT_THROW(fm::MonitorLoop(source, bad), std::invalid_argument);
  bad = {};
  bad.top_t = 0;
  EXPECT_THROW(fm::MonitorLoop(source, bad), std::invalid_argument);

  fm::MonitorConfig ok;
  ok.window_s = 1.0;
  ok.sampling_rate = 1.0;
  fm::MonitorLoop loop(source, ok);
  (void)loop.run();
  EXPECT_THROW((void)loop.run(), std::logic_error);
}

// The acceptance contract: no faults, alpha = 1, kBlock, window = bin —
// every snapshot reproduces the batch packet path's per-window sampled
// counts exactly, and shard count does not change a single bit.
TEST(MonitorLoop, BitIdenticalToBatchPacketPathAtAnyShardCount) {
  const double kRate = 0.3;
  const double kWindowS = 5.0;
  const std::uint64_t kSeed = 9;
  const std::size_t kTopT = 5;

  const auto trace = ft::generate_flow_trace(small_trace(20.0, 80.0, 17));
  const WindowCounts reference =
      batch_path_window_counts(trace, kRate, kSeed, kWindowS);
  ASSERT_FALSE(reference.empty());

  fm::MonitorConfig config;
  config.window_s = kWindowS;
  config.sampling_rate = kRate;
  config.seed = kSeed;
  config.top_t = kTopT;
  config.num_shards = 1;
  // Large queues: kBlock never hits a full queue, so the snapshot rows
  // (which include queue_full_events) stay deterministic.
  config.max_queue_chunks = 1024;

  fm::MonitorReport report1;
  const auto snaps1 =
      run_collecting(fixed_source(trace, "ref"), config, &report1);
  config.num_shards = 4;
  fm::MonitorReport report4;
  const auto snaps4 =
      run_collecting(fixed_source(trace, "ref"), config, &report4);

  expect_same_snapshots(snaps1, snaps4);
  EXPECT_EQ(report1.counters.packets_sampled, report4.counters.packets_sampled);
  EXPECT_EQ(report1.counters.windows, report4.counters.windows);

  // Each snapshot matches the independently replayed batch path.
  std::uint64_t total_sampled = 0;
  for (const auto& [w, window] : reference) {
    std::uint64_t window_total = 0;
    for (const auto& [key, count] : window) window_total += count;
    total_sampled += window_total;

    const auto it = std::find_if(
        snaps1.begin(), snaps1.end(),
        [&](const fm::MonitorSnapshot& s) { return s.window == w; });
    ASSERT_NE(it, snaps1.end()) << "no snapshot for window " << w;
    EXPECT_EQ(it->window_flows, window.size());
    EXPECT_EQ(it->window_packets, window_total);
    // alpha = 1: the tracker holds exactly the last window's flows.
    EXPECT_EQ(it->tracked_flows, window.size());
    EXPECT_EQ(it->effective_rate, kRate);

    const auto want = expected_top(window, kRate, kTopT);
    ASSERT_EQ(it->top.size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(it->top[r].key, want[r].key) << "window " << w << " rank " << r;
      EXPECT_EQ(it->top[r].estimate, want[r].estimate)
          << "window " << w << " rank " << r;
    }
  }
  EXPECT_EQ(report1.counters.packets_sampled, total_sampled);
  EXPECT_EQ(report1.counters.shed_packets, 0u);
  EXPECT_EQ(report1.counters.corrupt_records, 0u);
  EXPECT_EQ(report1.counters.stall_events, 0u);
}

// Soak: ~10^6 packets through >= 20 epoch rotations with EWMA smoothing.
// Tracker occupancy stays bounded (eviction works) and the snapshot
// series is identical at shard counts 1 and 4.
TEST(MonitorSoak, LongRunBoundedOccupancyAndShardIdentity) {
  const auto trace = ft::generate_flow_trace(small_trace(420.0, 260.0, 5));
  ASSERT_GE(trace.total_packets(), 1'000'000u);

  fm::MonitorConfig config;
  config.window_s = 20.0;
  config.sampling_rate = 0.05;
  config.seed = 11;
  config.top_t = 10;
  config.ewma_alpha = 0.3;
  config.num_shards = 1;
  config.max_queue_chunks = 1024;  // see bit-identity test

  fm::MonitorReport report1;
  const auto snaps1 =
      run_collecting(fixed_source(trace, "soak"), config, &report1);
  config.num_shards = 4;
  fm::MonitorReport report4;
  const auto snaps4 =
      run_collecting(fixed_source(trace, "soak"), config, &report4);

  EXPECT_GE(report1.counters.windows, 20u);
  expect_same_snapshots(snaps1, snaps4);
  EXPECT_EQ(report1.peak_tracked_flows, report4.peak_tracked_flows);

  // Bounded occupancy: eviction (estimate < 0.5 or 3 idle windows) keeps
  // the tracker within a small multiple of one window's flow population
  // even though the trace churns through vastly more distinct flows.
  EXPECT_GT(report1.peak_tracked_flows, 0u);
  EXPECT_LE(report1.peak_tracked_flows, 4 * report1.peak_window_flows);
}

// A fault-injected run completes: corrupt/truncated records are dropped
// and counted, bursts trip the shed policy, the effective rate degrades
// below the base rate and everything lands in the snapshot counters.
TEST(MonitorFaults, FaultInjectedRunCompletesWithNonzeroCounters) {
  const auto trace = ft::generate_flow_trace(small_trace(30.0, 100.0, 23));

  ft::FaultSpec faults;
  faults.corrupt_fraction = 0.05;
  faults.truncate_fraction = 0.05;
  faults.burst_flows = 300;
  faults.burst_every_s = 5.0;
  faults.burst_duration_s = 0.5;
  faults.seed = 99;
  const auto source = std::make_shared<ft::FaultInjectingTraceSource>(
      fixed_source(trace, "inner"), faults);

  fm::MonitorConfig config;
  config.window_s = 5.0;
  config.sampling_rate = 0.2;
  config.seed = 3;
  config.top_t = 10;
  config.overload = flowrank::ingest::OverloadPolicy::kShed;
  config.window_packet_budget = 300;
  config.max_queue_chunks = 1024;

  fm::MonitorReport report;
  const auto snaps = run_collecting(source, config, &report);

  EXPECT_GE(snaps.size(), 3u);
  EXPECT_GT(report.counters.corrupt_records, 0u);
  EXPECT_GT(report.counters.truncated_records, 0u);
  EXPECT_GT(report.counters.degradations, 0u);
  EXPECT_GT(report.counters.shed_packets, 0u);
  EXPECT_EQ(report.counters.packets_ingested,
            report.counters.packets_sampled - report.counters.shed_packets);

  double min_rate = std::numeric_limits<double>::infinity();
  for (const auto& snap : snaps) min_rate = std::min(min_rate, snap.effective_rate);
  EXPECT_LT(min_rate, config.sampling_rate);

  // The injected record faults match the wrapper's own deterministic count.
  const auto injected = source->injection_counts();
  EXPECT_EQ(report.counters.corrupt_records, injected.corrupted);
  EXPECT_EQ(report.counters.truncated_records, injected.truncated);
}

TEST(MonitorWatchdog, FailOnStallThrowsCategorizedError) {
  const auto trace = ft::generate_flow_trace(small_trace(10.0, 100.0, 7));
  ft::FaultSpec faults;
  faults.stall_every_batches = 2;
  faults.stall_ms = 60;
  const auto source = std::make_shared<ft::FaultInjectingTraceSource>(
      fixed_source(trace, "inner"), faults);

  fm::MonitorConfig config;
  config.window_s = 2.0;
  config.sampling_rate = 0.5;
  config.stall_deadline_ms = 10;
  config.fail_on_stall = true;

  fm::MonitorLoop loop(source, config);
  try {
    (void)loop.run();
    FAIL() << "expected flowrank::Error(kStalled)";
  } catch (const flowrank::Error& e) {
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kStalled);
    EXPECT_EQ(e.context(), "monitor");
  }
}

TEST(MonitorWatchdog, RotateOnStallSurvivesAndCounts) {
  const auto trace = ft::generate_flow_trace(small_trace(10.0, 100.0, 7));
  ft::FaultSpec faults;
  faults.stall_every_batches = 2;
  faults.stall_ms = 60;
  const auto source = std::make_shared<ft::FaultInjectingTraceSource>(
      fixed_source(trace, "inner"), faults);

  fm::MonitorConfig config;
  config.window_s = 2.0;
  config.sampling_rate = 0.5;
  config.stall_deadline_ms = 10;
  config.fail_on_stall = false;

  fm::MonitorReport report;
  const auto snaps = run_collecting(source, config, &report);
  EXPECT_GE(report.counters.stall_events, 1u);
  EXPECT_GE(report.counters.watchdog_rotations, 1u);
  EXPECT_FALSE(snaps.empty());
}

TEST(MonitorSnapshots, ColumnsAndRowsAgreeAndAreNumeric) {
  const auto columns = fm::snapshot_columns();
  fm::MonitorSnapshot snap;
  snap.top = {{fp::FlowKey{1, 2}, 42.0}};
  const auto row = fm::snapshot_row(snap);
  EXPECT_EQ(row.size(), columns.size());
}

TEST(FaultInjection, ClassifiesRecordFaults) {
  fp::FlowRecord clean;
  clean.start_s = 1.0;
  clean.duration_s = 2.0;
  clean.packets = 5;
  clean.bytes = 2500;
  EXPECT_EQ(ft::classify_record_fault(clean), ft::RecordFault::kNone);

  fp::FlowRecord corrupt = clean;
  corrupt.start_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ft::classify_record_fault(corrupt), ft::RecordFault::kCorrupt);
  corrupt = clean;
  corrupt.duration_s = -1.0;
  EXPECT_EQ(ft::classify_record_fault(corrupt), ft::RecordFault::kCorrupt);

  fp::FlowRecord truncated = clean;
  truncated.packets = 0;
  truncated.bytes = 0;
  EXPECT_EQ(ft::classify_record_fault(truncated), ft::RecordFault::kTruncated);
}

TEST(FaultInjection, InjectionIsDeterministicAndCounted) {
  const auto trace = ft::generate_flow_trace(small_trace(20.0, 60.0, 13));
  ft::FaultSpec faults;
  faults.corrupt_fraction = 0.1;
  faults.truncate_fraction = 0.1;
  faults.burst_flows = 50;
  faults.burst_every_s = 4.0;
  faults.seed = 41;

  const ft::FaultInjectingTraceSource a(fixed_source(trace, "x"), faults);
  const ft::FaultInjectingTraceSource b(fixed_source(trace, "x"), faults);
  const auto fa = a.flows();
  const auto fb = b.flows();
  ASSERT_EQ(fa.flows.size(), fb.flows.size());
  EXPECT_EQ(fa.flows.size(), trace.flows.size() + a.injection_counts().burst_flows);

  const auto counts = a.injection_counts();
  EXPECT_GT(counts.corrupted, 0u);
  EXPECT_GT(counts.truncated, 0u);
  EXPECT_GT(counts.burst_flows, 0u);

  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  for (std::size_t i = 0; i < fa.flows.size(); ++i) {
    const auto fault = ft::classify_record_fault(fa.flows[i]);
    EXPECT_EQ(fault, ft::classify_record_fault(fb.flows[i])) << "record " << i;
    if (fault == ft::RecordFault::kCorrupt) ++corrupted;
    if (fault == ft::RecordFault::kTruncated) ++truncated;
  }
  EXPECT_EQ(corrupted, counts.corrupted);
  EXPECT_EQ(truncated, counts.truncated);

  EXPECT_EQ(a.name(), "faulty(x)");
}

TEST(FaultInjection, RejectsBadSpecs) {
  const auto trace = ft::generate_flow_trace(small_trace(2.0, 20.0, 1));
  ft::FaultSpec ok;
  EXPECT_THROW(ft::FaultInjectingTraceSource(nullptr, ok), std::invalid_argument);
  ft::FaultSpec bad;
  bad.corrupt_fraction = 1.5;
  EXPECT_THROW(ft::FaultInjectingTraceSource(fixed_source(trace, "x"), bad),
               std::invalid_argument);
  bad = {};
  bad.truncate_fraction = -0.1;
  EXPECT_THROW(ft::FaultInjectingTraceSource(fixed_source(trace, "x"), bad),
               std::invalid_argument);
}

TEST(FaultInjection, StallScheduleIsDeterministic) {
  const auto trace = ft::generate_flow_trace(small_trace(2.0, 20.0, 1));
  ft::FaultSpec faults;
  faults.stall_every_batches = 3;
  faults.stall_ms = 25;
  const ft::FaultInjectingTraceSource source(fixed_source(trace, "x"), faults);
  EXPECT_EQ(source.stall_ms_before_batch(0), 0u);  // never stall the first pull
  EXPECT_EQ(source.stall_ms_before_batch(1), 0u);
  EXPECT_EQ(source.stall_ms_before_batch(3), 25u);
  EXPECT_EQ(source.stall_ms_before_batch(6), 25u);

  ft::FaultSpec none;
  const ft::FaultInjectingTraceSource quiet(fixed_source(trace, "x"), none);
  EXPECT_EQ(quiet.stall_ms_before_batch(3), 0u);
  EXPECT_FALSE(none.any());
  EXPECT_TRUE(faults.any());
}
