// Tests for the two-flow misranking model (Secs. 3-4) and the optimal
// sampling rate solver.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "flowrank/core/misranking.hpp"
#include "flowrank/core/optimal_rate.hpp"
#include "flowrank/util/rng.hpp"

namespace fc = flowrank::core;

namespace {

/// Brute-force Pm via enumeration of both binomials (tiny sizes only).
double brute_force_pm(int s1, int s2, double p) {
  auto pmf = [&](int k, int n) {
    double acc = 0.0;
    // direct binomial pmf
    double log_p = std::log(p), log_q = std::log1p(-p);
    double log_choose = 0.0;
    for (int i = 0; i < k; ++i) {
      log_choose += std::log(static_cast<double>(n - i)) -
                    std::log(static_cast<double>(i + 1));
    }
    acc = std::exp(log_choose + k * log_p + (n - k) * log_q);
    return acc;
  };
  if (s1 == s2) {
    double agree = 0.0;
    for (int i = 1; i <= s1; ++i) agree += pmf(i, s1) * pmf(i, s2);
    return 1.0 - agree;
  }
  const int small = std::min(s1, s2), big = std::max(s1, s2);
  double acc = 0.0;
  for (int i = 0; i <= small; ++i) {
    for (int j = 0; j <= i; ++j) acc += pmf(i, small) * pmf(j, big);
  }
  return acc;
}

/// Monte-Carlo Pm estimate.
double monte_carlo_pm(int s1, int s2, double p, int trials, std::uint64_t seed) {
  auto eng = flowrank::util::make_engine(seed);
  std::binomial_distribution<int> b1(s1, p), b2(s2, p);
  int mis = 0;
  for (int i = 0; i < trials; ++i) {
    const int x1 = b1(eng), x2 = b2(eng);
    if (s1 < s2 ? x1 >= x2 : x2 >= x1) ++mis;
  }
  return static_cast<double>(mis) / trials;
}

}  // namespace

TEST(Misranking, MatchesBruteForceEnumeration) {
  for (double p : {0.05, 0.3, 0.7}) {
    for (int s1 : {1, 3, 10}) {
      for (int s2 : {1, 5, 20}) {
        EXPECT_NEAR(fc::misranking_exact(s1, s2, p), brute_force_pm(s1, s2, p), 1e-10)
            << "s1=" << s1 << " s2=" << s2 << " p=" << p;
      }
    }
  }
}

TEST(Misranking, MatchesMonteCarlo) {
  // 300 vs 500 packets at 5%: a realistic "two large flows" pair.
  const double exact = fc::misranking_exact(300, 500, 0.05);
  const double mc = monte_carlo_pm(300, 500, 0.05, 400000, 99);
  EXPECT_NEAR(exact, mc, 4.0 * std::sqrt(mc * (1 - mc) / 400000) + 1e-4);
}

TEST(Misranking, SymmetricInSizes) {
  for (double p : {0.01, 0.2}) {
    EXPECT_DOUBLE_EQ(fc::misranking_exact(17, 60, p), fc::misranking_exact(60, 17, p));
    EXPECT_DOUBLE_EQ(fc::misranking_gaussian(17, 60, p),
                     fc::misranking_gaussian(60, 17, p));
  }
}

TEST(Misranking, LimitsInSamplingRate) {
  // p -> 0: certainty of misranking; p -> 1: perfect ranking.
  EXPECT_DOUBLE_EQ(fc::misranking_exact(10, 20, 0.0), 1.0);
  EXPECT_NEAR(fc::misranking_exact(10, 20, 0.999999), 0.0, 1e-4);
  EXPECT_DOUBLE_EQ(fc::misranking_gaussian(10, 20, 1.0), 0.0);
}

TEST(Misranking, MonotoneDecreasingInP) {
  double prev = 1.1;
  for (double p : {0.001, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9}) {
    const double pm = fc::misranking_exact(50, 80, p);
    EXPECT_LT(pm, prev);
    prev = pm;
  }
}

TEST(Misranking, AggregationInequalityFromSec31) {
  // Pm(S1,S2) >= Pm(S1-k,S2): removing packets from the smaller flow can
  // only improve the ranking.
  const double p = 0.1;
  for (int k = 1; k < 40; k += 7) {
    EXPECT_GE(fc::misranking_exact(40, 60, p) + 1e-12,
              fc::misranking_exact(40 - k, 60, p));
  }
}

TEST(Misranking, HardestPairIsEqualSizes) {
  const double p = 0.05;
  const double equal = fc::misranking_exact(100, 100, p);
  for (int s2 : {101, 120, 200, 400}) {
    EXPECT_LT(fc::misranking_exact(100, s2, p), equal);
  }
}

TEST(Misranking, VsOnePacketClosedForm) {
  // Sec 3.1: against a 1-packet flow, Pm = (1-p)^{S-1} (1-p+p^2 S).
  for (double p : {0.01, 0.1, 0.5}) {
    for (int s : {2, 10, 100, 1000}) {
      EXPECT_NEAR(fc::misranking_vs_one_packet(s, p),
                  std::pow(1 - p, s - 1) * (1 - p + p * p * s), 1e-12);
      // And it tends to zero as S grows.
    }
    EXPECT_LT(fc::misranking_vs_one_packet(5000, p),
              fc::misranking_vs_one_packet(50, p));
  }
}

TEST(Misranking, OnePacketFormulaMatchesExactModel) {
  for (double p : {0.05, 0.2, 0.6}) {
    for (int s : {2, 5, 30, 300}) {
      EXPECT_NEAR(fc::misranking_exact(1, s, p), fc::misranking_vs_one_packet(s, p),
                  1e-9)
          << "p=" << p << " s=" << s;
    }
  }
}

TEST(Misranking, GaussianCloseToExactWhenPSLarge) {
  // Fig. 3's observation: absolute error small once pS >~ 3 for one flow.
  for (double p : {0.01, 0.05}) {
    for (int s1 : {400, 800}) {
      for (int s2 : {500, 1000}) {
        if (p * std::max(s1, s2) >= 3.0) {
          EXPECT_LT(fc::misranking_abs_error(s1, s2, p), 0.08)
              << "p=" << p << " s1=" << s1 << " s2=" << s2;
        }
      }
    }
  }
}

TEST(Misranking, GaussianErrorLargeWhenPSTiny) {
  // With pS << 1 both flows usually vanish: exact says "misranked" with
  // high probability, the Gaussian does not capture that.
  EXPECT_GT(fc::misranking_abs_error(5, 8, 0.01), 0.3);
}

TEST(Misranking, SquareRootScalingLaw) {
  // Sec. 4: with S1 = alpha*S2 fixed, Pm decreases as sizes grow; with
  // S2-S1 = k fixed, Pm increases as sizes grow.
  const double p = 0.01;
  EXPECT_GT(fc::misranking_gaussian(50, 100, p), fc::misranking_gaussian(500, 1000, p));
  EXPECT_LT(fc::misranking_gaussian(50, 60, p), fc::misranking_gaussian(500, 510, p));
}

TEST(Misranking, InvalidArguments) {
  EXPECT_THROW((void)fc::misranking_exact(0, 5, 0.1), std::invalid_argument);
  EXPECT_THROW((void)fc::misranking_exact(5, 5, -0.1), std::invalid_argument);
  EXPECT_THROW((void)fc::misranking_gaussian(5, 5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fc::misranking_vs_one_packet(0, 0.1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Optimal sampling rate (Sec. 3.2, Figs. 1-2)
// ---------------------------------------------------------------------------

TEST(OptimalRate, AchievesTarget) {
  const double target = 1e-3;
  for (auto [s1, s2] : {std::pair{100, 200}, {10, 1000}, {500, 600}}) {
    const double p = fc::optimal_sampling_rate(s1, s2, target);
    if (p < 1.0) {
      EXPECT_NEAR(fc::misranking_exact(s1, s2, p), target, target * 0.05)
          << s1 << "," << s2;
    }
    // Any higher rate does at least as well.
    EXPECT_LE(fc::misranking_exact(s1, s2, std::min(1.0, p * 1.2)),
              target * 1.05);
  }
}

TEST(OptimalRate, EqualSizesNeedNearCompleteSampling) {
  // Equal sizes only rank correctly when sampling is nearly lossless (a
  // non-zero sampled tie counts as correct, so p -> 1 does succeed).
  const double p = fc::optimal_sampling_rate(100, 100, 1e-3);
  EXPECT_GT(p, 0.99);
  EXPECT_LE(fc::misranking_exact(100, 100, p), 1e-3 * 1.05);
}

TEST(OptimalRate, DecreasesWithProportionalGap) {
  // Flows alpha*S vs S: needed rate drops as S grows (Fig. 1 narrowing).
  const double p_small = fc::optimal_sampling_rate(50, 100, 1e-3);
  const double p_large = fc::optimal_sampling_rate(500, 1000, 1e-3);
  EXPECT_LT(p_large, p_small);
}

TEST(OptimalRate, IncreasesWithConstantGap) {
  // Flows S-k vs S: needed rate grows with S (Fig. 2 widening).
  const double p_small = fc::optimal_sampling_rate(50, 60, 1e-3);
  const double p_large = fc::optimal_sampling_rate(500, 510, 1e-3);
  EXPECT_GT(p_large, p_small);
}

TEST(OptimalRate, GaussianModelAgreesForLargeFlows) {
  const double pe = fc::optimal_sampling_rate(600, 900, 1e-3,
                                              fc::MisrankingModel::kExact);
  const double pg = fc::optimal_sampling_rate(600, 900, 1e-3,
                                              fc::MisrankingModel::kGaussian);
  EXPECT_NEAR(pe, pg, 0.05);
}

TEST(OptimalRate, RespectsFloor) {
  // Hugely different flows need almost no sampling; solver returns p_min
  // once the target is met there ((1-p)^{S-1} ~ e^{-20} << 1e-3).
  EXPECT_DOUBLE_EQ(fc::optimal_sampling_rate(1, 20000000, 1e-3), 1e-6);
}

TEST(OptimalRate, InvalidArguments) {
  EXPECT_THROW((void)fc::optimal_sampling_rate(10, 20, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fc::optimal_sampling_rate(10, 20, 1.0), std::invalid_argument);
  EXPECT_THROW((void)fc::optimal_sampling_rate(10, 20, 0.5, fc::MisrankingModel::kExact,
                                               0.0),
               std::invalid_argument);
}
