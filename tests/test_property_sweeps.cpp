// Parameterized property sweeps across the model stack: invariants that
// must hold for every (size, rate, distribution) combination, exercised
// on grids via TEST_P.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "flowrank/core/misranking.hpp"
#include "flowrank/core/model_common.hpp"
#include "flowrank/core/optimal_rate.hpp"
#include "flowrank/dist/exponential.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/numeric/binomial.hpp"

namespace fc = flowrank::core;
namespace fd = flowrank::dist;
namespace fn = flowrank::numeric;

// ---------------------------------------------------------------------------
// Pairwise misranking probability: invariants on a (s1, s2, p) grid
// ---------------------------------------------------------------------------

struct PairCase {
  std::int64_t s1;
  std::int64_t s2;
  double p;
};

class MisrankingGrid : public ::testing::TestWithParam<PairCase> {};

TEST_P(MisrankingGrid, ProbabilityBoundsAndSymmetry) {
  const auto c = GetParam();
  const double exact = fc::misranking_exact(c.s1, c.s2, c.p);
  EXPECT_GE(exact, 0.0);
  EXPECT_LE(exact, 1.0);
  EXPECT_DOUBLE_EQ(exact, fc::misranking_exact(c.s2, c.s1, c.p));
  const double hybrid = fc::misranking_hybrid(static_cast<double>(c.s1),
                                              static_cast<double>(c.s2), c.p);
  EXPECT_GE(hybrid, 0.0);
  EXPECT_LE(hybrid, 1.0);
  EXPECT_DOUBLE_EQ(hybrid, fc::misranking_hybrid(static_cast<double>(c.s2),
                                                 static_cast<double>(c.s1), c.p));
}

TEST_P(MisrankingGrid, WideningTheGapNeverHurts) {
  // Pm(S1, S2) >= Pm(S1 - k, S2): Sec. 3.1's aggregation argument.
  const auto c = GetParam();
  if (c.s1 <= 2 || c.s1 >= c.s2) return;
  const double base = fc::misranking_exact(c.s1, c.s2, c.p);
  const double wider = fc::misranking_exact(c.s1 / 2, c.s2, c.p);
  EXPECT_GE(base + 1e-12, wider);
}

TEST_P(MisrankingGrid, HybridTracksExact) {
  const auto c = GetParam();
  const double exact = fc::misranking_exact(c.s1, c.s2, c.p);
  const double hybrid = fc::misranking_hybrid(static_cast<double>(c.s1),
                                              static_cast<double>(c.s2), c.p);
  if (c.s1 == c.s2) {
    // Equal sizes use different conventions (tie-aware vs P{s1>=s2});
    // only the bounds apply.
    return;
  }
  EXPECT_NEAR(hybrid, exact, 0.025 + 0.06 * exact)
      << "s1=" << c.s1 << " s2=" << c.s2 << " p=" << c.p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MisrankingGrid,
    ::testing::Values(PairCase{2, 5, 0.001}, PairCase{2, 5, 0.1},
                      PairCase{2, 5, 0.9}, PairCase{30, 40, 0.01},
                      PairCase{30, 40, 0.3}, PairCase{100, 100, 0.05},
                      PairCase{200, 1000, 0.001}, PairCase{200, 1000, 0.02},
                      PairCase{900, 1000, 0.005}, PairCase{900, 1000, 0.25},
                      PairCase{5000, 5100, 0.002}, PairCase{50, 20000, 0.001}));

// ---------------------------------------------------------------------------
// Optimal sampling rate: consistency against the forward model
// ---------------------------------------------------------------------------

struct OptimalCase {
  std::int64_t s1;
  std::int64_t s2;
  double target;
};

class OptimalRateGrid : public ::testing::TestWithParam<OptimalCase> {};

TEST_P(OptimalRateGrid, SolutionIsMinimalAndFeasible) {
  const auto c = GetParam();
  const double p = fc::optimal_sampling_rate(c.s1, c.s2, c.target);
  if (p < 1.0 && p > 1e-6) {
    EXPECT_LE(fc::misranking_exact(c.s1, c.s2, p), c.target * 1.02);
    EXPECT_GT(fc::misranking_exact(c.s1, c.s2, p * 0.8), c.target);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, OptimalRateGrid,
                         ::testing::Values(OptimalCase{10, 100, 1e-2},
                                           OptimalCase{10, 100, 1e-3},
                                           OptimalCase{100, 150, 1e-3},
                                           OptimalCase{400, 800, 1e-3},
                                           OptimalCase{400, 800, 1e-4},
                                           OptimalCase{50, 2000, 1e-3}));

// ---------------------------------------------------------------------------
// top_probability: must match the direct binomial CDF everywhere
// ---------------------------------------------------------------------------

struct TopProbCase {
  double y;
  std::int64_t t;
  std::int64_t n;
};

class TopProbabilityGrid : public ::testing::TestWithParam<TopProbCase> {};

TEST_P(TopProbabilityGrid, MatchesBinomialCdf) {
  const auto c = GetParam();
  fc::QuadratureOptions opts;
  opts.poisson_threshold = 1LL << 60;  // force the exact path
  const double exact = fc::top_probability(c.y, c.t, c.n, opts);
  EXPECT_NEAR(exact, fn::binomial_cdf(c.t - 1, c.n - 1, c.y), 1e-10);
  // And the Poisson fast path agrees in its regime.
  if (c.y < 0.01) {
    opts.poisson_threshold = 1;
    const double fast = fc::top_probability(c.y, c.t, c.n, opts);
    EXPECT_NEAR(fast, exact, 5e-4 + 0.02 * exact);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopProbabilityGrid,
    ::testing::Values(TopProbCase{1e-6, 10, 1000000}, TopProbCase{1e-5, 10, 1000000},
                      TopProbCase{2e-5, 25, 1000000}, TopProbCase{1e-3, 5, 10000},
                      TopProbCase{5e-3, 10, 2000}, TopProbCase{0.5, 3, 10}));

// ---------------------------------------------------------------------------
// Distribution tail-quantile round trips on dense grids
// ---------------------------------------------------------------------------

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, ParetoAndExponentialInvert) {
  const double y = GetParam();
  const auto pareto = fd::Pareto::from_mean(9.6, 1.5);
  EXPECT_NEAR(pareto.ccdf(pareto.tail_quantile(y)), y, 1e-9 * std::max(1.0, 1.0 / y) * y);
  const auto expo = fd::Exponential::from_mean(9.6);
  EXPECT_NEAR(expo.ccdf(expo.tail_quantile(y)), y, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileRoundTrip,
                         ::testing::Values(0.999, 0.9, 0.5, 0.1, 1e-2, 1e-4, 1e-6,
                                           1e-8, 1e-10));

// ---------------------------------------------------------------------------
// Square-root condition (Sec. 4): distributions whose quantile spacing
// grows faster than sqrt(x) rank better as flows grow
// ---------------------------------------------------------------------------

TEST(SquareRootCondition, ParetoAndExponentialSatisfyItAtTheTail) {
  // dx/dy grows faster than sqrt(x): check the ratio of quantile gaps to
  // sqrt(size) increases as we go deeper into the tail.
  for (const auto* name : {"pareto", "exponential"}) {
    std::unique_ptr<fd::FlowSizeDistribution> dist;
    if (std::string(name) == "pareto") {
      dist = std::make_unique<fd::Pareto>(fd::Pareto::from_mean(9.6, 1.5));
    } else {
      dist = std::make_unique<fd::Exponential>(fd::Exponential::from_mean(9.6));
    }
    double prev_ratio = 0.0;
    for (double y : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
      const double x = dist->tail_quantile(y);
      // |dx/dy| by finite difference with absolute step 0.1 y.
      const double dxdy = (dist->tail_quantile(y * 0.9) - x) / (0.1 * y);
      const double ratio = dxdy / std::sqrt(x);
      EXPECT_GT(ratio, prev_ratio) << name << " y=" << y;
      prev_ratio = ratio;
    }
  }
}

TEST(SquareRootCondition, MisrankingOfAdjacentQuantilesImprovesInTail) {
  // The operational consequence: adjacent "rank neighbours" (y and 0.9y)
  // become easier to rank as y shrinks, for sqrt-condition distributions.
  const auto pareto = fd::Pareto::from_mean(9.6, 1.5);
  double prev = 1.0;
  for (double y : {1e-2, 1e-3, 1e-4, 1e-5}) {
    const double pm = fc::misranking_gaussian(pareto.tail_quantile(y),
                                              pareto.tail_quantile(y * 0.9), 0.01);
    EXPECT_LT(pm, prev) << y;
    prev = pm;
  }
}
