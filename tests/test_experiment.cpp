// Tests for the unified experiment layer: sweep/estimator grammars, spec
// files + CLI overrides, engine parity with the underlying models on all
// three model axes, estimator stages under sampling (bit-identical to
// direct estimator calls at shards {1, 4}), and the scenario_runner
// shim's --export-trace path.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/agg/fleet_run.hpp"
#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/discrete_context.hpp"
#include "flowrank/core/ranking_model.hpp"
#include "flowrank/dist/discretized.hpp"
#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/sim/experiment.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/trace/trace_io.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/rng.hpp"

namespace fe = flowrank::estimators;
namespace fp = flowrank::packet;
namespace fr = flowrank::report;
namespace fsim = flowrank::sim;
namespace ft = flowrank::trace;

namespace {

/// Captures emitted rows (as cell text) instead of writing a stream.
class CaptureSink final : public fr::ResultSink {
 public:
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::pair<std::string, std::string>> spec_echo;

 protected:
  void write_header(const std::vector<std::string>& cols,
                    const fr::RunMetadata& meta) override {
    columns = cols;
    spec_echo = meta.spec_echo;
  }
  void write_row(const fr::Row& row) override {
    std::vector<std::string> cells;
    for (const auto& value : row) cells.push_back(value.text());
    rows.push_back(std::move(cells));
  }
  void flush() override {}
  [[nodiscard]] bool stream_ok() const noexcept override { return true; }
};

std::size_t column_index(const CaptureSink& sink, const std::string& name) {
  for (std::size_t i = 0; i < sink.columns.size(); ++i) {
    if (sink.columns[i] == name) return i;
  }
  ADD_FAILURE() << "no column " << name;
  return 0;
}

std::string write_temp_spec(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream os(path);
  os << body;
  return path;
}

/// Small synthetic packet workload shared by the packet-model tests.
fsim::ExperimentSpec packet_spec() {
  fsim::ExperimentSpec spec;
  spec.name = "packet_test";
  fsim::apply_experiment_entry(spec, "model", "packet");
  fsim::apply_experiment_entry(spec, "preset", "sprint_5tuple");
  fsim::apply_experiment_entry(spec, "duration", "40");
  fsim::apply_experiment_entry(spec, "flow-rate", "200");
  fsim::apply_experiment_entry(spec, "trace-seed", "21");
  fsim::apply_experiment_entry(spec, "bin", "10");
  fsim::apply_experiment_entry(spec, "t", "5");
  fsim::apply_experiment_entry(spec, "rates", "0.2");
  fsim::apply_experiment_entry(spec, "seed", "9");
  fsim::apply_experiment_entry(spec, "shards", "1");
  return spec;
}

}  // namespace

// --- grammars --------------------------------------------------------------

TEST(SweepGrammar, LogRangePinsEndpoints) {
  const auto values = fsim::parse_sweep_values("0.001..0.5 log 10");
  ASSERT_EQ(values.size(), 10u);
  EXPECT_DOUBLE_EQ(values.front(), 0.001);
  EXPECT_DOUBLE_EQ(values.back(), 0.5);
  // Same construction as the historical paper_rate_grid: equal log steps.
  const double step = (std::log(0.5) - std::log(0.001)) / 9.0;
  EXPECT_DOUBLE_EQ(values[3], std::exp(std::log(0.001) + 3 * step));
}

TEST(SweepGrammar, LinRangeAndList) {
  const auto lin = fsim::parse_sweep_values("100..1000 lin 10");
  ASSERT_EQ(lin.size(), 10u);
  EXPECT_DOUBLE_EQ(lin[1], 200.0);
  EXPECT_DOUBLE_EQ(lin.back(), 1000.0);
  const auto list = fsim::parse_sweep_values("3,2.5,2,1.5,1.2");
  ASSERT_EQ(list.size(), 5u);
  EXPECT_DOUBLE_EQ(list.front(), 3.0);
  EXPECT_DOUBLE_EQ(list.back(), 1.2);  // descending lists stay as declared
}

TEST(SweepGrammar, Rejections) {
  EXPECT_THROW(fsim::parse_sweep_values("1..10 log 1"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_sweep_values("10..1 log 4"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_sweep_values("0..10 log 4"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_sweep_values("1..10 geom 4"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_sweep_values("1..10 log 4 junk"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_sweep_values(""), std::invalid_argument);
}

TEST(EstimatorGrammar, ParsesAllKinds) {
  EXPECT_EQ(fsim::parse_estimator("none").kind, fsim::EstimatorStage::Kind::kNone);
  EXPECT_EQ(fsim::parse_estimator("inversion").kind,
            fsim::EstimatorStage::Kind::kInversion);
  EXPECT_EQ(fsim::parse_estimator("tcp_seq").kind,
            fsim::EstimatorStage::Kind::kTcpSeq);
  const auto sah = fsim::parse_estimator("sample_and_hold:slots=64,hold=0.05");
  EXPECT_EQ(sah.kind, fsim::EstimatorStage::Kind::kSampleAndHold);
  EXPECT_EQ(sah.slots, 64u);
  EXPECT_DOUBLE_EQ(sah.hold_probability, 0.05);
  const auto ssv = fsim::parse_estimator("space_saving:slots=32");
  EXPECT_EQ(ssv.kind, fsim::EstimatorStage::Kind::kSpaceSaving);
  EXPECT_EQ(ssv.slots, 32u);
}

TEST(EstimatorGrammar, Rejections) {
  EXPECT_THROW(fsim::parse_estimator("count_min:slots=4"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_estimator("space_saving:slots=0"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_estimator("space_saving:slots=-1"),
               std::invalid_argument);
  EXPECT_THROW(fsim::parse_estimator("space_saving:slots=1.5"),
               std::invalid_argument);
  EXPECT_THROW(fsim::parse_estimator("sample_and_hold:slots=-8"),
               std::invalid_argument);
  EXPECT_THROW(fsim::parse_estimator("space_saving:bogus=1"), std::invalid_argument);
  EXPECT_THROW(fsim::parse_estimator("sample_and_hold:hold=2"),
               std::invalid_argument);
}

// --- spec files + overrides ------------------------------------------------

TEST(ExperimentSpecFile, ParsesModelSweepsAndScenarioKeys) {
  const std::string path = write_temp_spec("exp_parse.spec",
                                           "name = parse test\n"
                                           "description = a description\n"
                                           "model = exact\n"
                                           "metric = detection\n"
                                           "n = 50000\n"
                                           "preset = sprint_prefix24\n"
                                           "beta = 1.3   # scenario key\n"
                                           "sweep rate = 0.01..0.5 log 4\n"
                                           "sweep t = 1,5\n");
  const auto spec = fsim::parse_experiment_file(path);
  EXPECT_EQ(spec.name, "parse test");
  EXPECT_EQ(spec.description, "a description");
  EXPECT_EQ(spec.model, fsim::ExperimentModel::kExact);
  EXPECT_EQ(spec.metric, fsim::ExactMetric::kDetection);
  EXPECT_EQ(spec.exact_n, 50000);
  EXPECT_EQ(spec.preset, "sprint_prefix24");
  EXPECT_DOUBLE_EQ(spec.beta, 1.3);
  ASSERT_EQ(spec.sweeps.size(), 2u);
  EXPECT_EQ(spec.sweeps[0].param, "rate");
  EXPECT_EQ(spec.sweeps[0].values.size(), 4u);
  EXPECT_EQ(spec.sweeps[1].param, "t");
  std::remove(path.c_str());
}

TEST(ExperimentSpecFile, UnknownKeysAndParamsThrow) {
  const std::string bad_key = write_temp_spec("exp_bad_key.spec", "modle = exact\n");
  EXPECT_THROW((void)fsim::parse_experiment_file(bad_key), std::runtime_error);
  const std::string bad_sweep =
      write_temp_spec("exp_bad_sweep.spec", "sweep rats = 1,2\n");
  EXPECT_THROW((void)fsim::parse_experiment_file(bad_sweep), std::runtime_error);
  std::remove(bad_key.c_str());
  std::remove(bad_sweep.c_str());
}

TEST(ExperimentSpecFile, ParsesExactDiscreteKeys) {
  const std::string path = write_temp_spec("exp_discrete.spec",
                                           "model = exact\n"
                                           "metric = ranking\n"
                                           "exact-pairwise = exact-discrete\n"
                                           "max-size = 600\n"
                                           "tail-tol = 1e-4\n"
                                           "window = 0.001\n"
                                           "n = 2000\n"
                                           "rate = 0.2\n"
                                           "sweep t = 5,10,25\n");
  const auto spec = fsim::parse_experiment_file(path);
  EXPECT_TRUE(spec.exact_discrete);
  EXPECT_EQ(spec.exact_max_size, 600);
  EXPECT_DOUBLE_EQ(spec.exact_tail_tol, 1e-4);
  EXPECT_DOUBLE_EQ(spec.exact_window, 0.001);
  std::remove(path.c_str());

  // The other two exact-pairwise flavors route to the continuous model.
  fsim::ExperimentSpec flavors;
  fsim::apply_experiment_entry(flavors, "exact-pairwise", "hybrid");
  EXPECT_FALSE(flavors.exact_discrete);
  EXPECT_EQ(flavors.pairwise, flowrank::core::PairwiseModel::kHybrid);
  fsim::apply_experiment_entry(flavors, "exact-pairwise", "gaussian");
  EXPECT_EQ(flavors.pairwise, flowrank::core::PairwiseModel::kGaussian);
  EXPECT_THROW(fsim::apply_experiment_entry(flavors, "exact-pairwise", "exact"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_experiment_entry(flavors, "max-size", "1"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_experiment_entry(flavors, "max-size", "2.5"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_experiment_entry(flavors, "tail-tol", "0"),
               std::invalid_argument);
}

TEST(ExperimentSpecFile, UnknownKeyErrorListsExperimentKeys) {
  fsim::ExperimentSpec spec;
  try {
    fsim::apply_experiment_entry(spec, "max-sizes", "600");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("unknown key"), std::string::npos) << what;
    // The augmented vocabulary must name the exact-discrete knobs.
    for (const char* key : {"exact-pairwise", "max-size", "tail-tol", "window"}) {
      EXPECT_NE(what.find(key), std::string::npos) << "missing " << key << ": " << what;
    }
  }
}

TEST(ExperimentSpecFile, CliOverridesReplaceAxes) {
  const std::string path = write_temp_spec("exp_override.spec",
                                           "model = exact\n"
                                           "metric = ranking\n"
                                           "n = 1000\n"
                                           "sweep rate = 0.01,0.1\n"
                                           "sweep t = 1,2\n");
  const char* argv[] = {"prog", "--spec", path.c_str(), "--sweep-rate",
                        "0.2,0.3,0.4", "--n", "2000"};
  const flowrank::util::Cli cli(7, argv);
  const auto spec = fsim::experiment_from_cli(cli);
  EXPECT_EQ(spec.exact_n, 2000);
  ASSERT_EQ(spec.sweeps.size(), 2u);
  EXPECT_EQ(spec.sweeps[0].param, "rate");  // replaced in place, order kept
  EXPECT_EQ(spec.sweeps[0].values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.sweeps[0].values[0], 0.2);
  std::remove(path.c_str());
}

TEST(ExperimentSpec, ModelAxisValidation) {
  fsim::ExperimentSpec spec;
  fsim::apply_experiment_entry(spec, "model", "packet");
  fsim::apply_experiment_entry(spec, "sweep s1", "1,2");
  CaptureSink sink;
  EXPECT_THROW(fsim::run_experiment(spec, sink), std::invalid_argument);

  fsim::ExperimentSpec est;
  fsim::apply_experiment_entry(est, "model", "mc");
  fsim::apply_experiment_entry(est, "estimator", "inversion");
  CaptureSink sink2;
  EXPECT_THROW(fsim::run_experiment(est, sink2), std::invalid_argument);

  fsim::ExperimentSpec opt;
  fsim::apply_experiment_entry(opt, "model", "exact");
  fsim::apply_experiment_entry(opt, "metric", "optimal_rate");
  CaptureSink sink3;  // optimal_rate needs both s1 and s2 sweeps
  EXPECT_THROW(fsim::run_experiment(opt, sink3), std::invalid_argument);
}

// --- engine parity with the underlying models ------------------------------

TEST(ExperimentEngine, ExactRankingMatchesDirectModelCalls) {
  fsim::ExperimentSpec spec;
  fsim::apply_experiment_entry(spec, "model", "exact");
  fsim::apply_experiment_entry(spec, "metric", "ranking");
  fsim::apply_experiment_entry(spec, "n", "20000");
  fsim::apply_experiment_entry(spec, "preset", "sprint_5tuple");
  fsim::apply_experiment_entry(spec, "beta", "1.5");
  fsim::apply_experiment_entry(spec, "sweep rate", "0.01,0.1");
  fsim::apply_experiment_entry(spec, "sweep t", "1,5");
  CaptureSink sink;
  EXPECT_EQ(fsim::run_experiment(spec, sink), 4u);
  ASSERT_EQ(sink.rows.size(), 4u);

  const auto metric_col = column_index(sink, "metric");
  std::size_t row = 0;
  for (const double rate : {0.01, 0.1}) {
    for (const std::int64_t t : {1, 5}) {  // row-major: rate outer, t inner
      flowrank::core::RankingModelConfig cfg;
      cfg.n = 20000;
      cfg.t = t;
      cfg.p = rate;
      cfg.size_dist = fsim::make_size_distribution(spec);
      const auto expected = flowrank::core::evaluate_ranking_model(cfg);
      EXPECT_EQ(sink.rows[row][metric_col], fr::Value(expected.metric).text())
          << "row " << row;
      ++row;
    }
  }
}

// A t-sweep under exact-pairwise=exact-discrete: one shared context serves
// all cells (bit-identical to a direct context evaluation), and the run
// metadata documents the sharing.
TEST(ExperimentEngine, ExactDiscreteMatchesContextAndReportsReuse) {
  fsim::ExperimentSpec spec;
  fsim::apply_experiment_entry(spec, "model", "exact");
  fsim::apply_experiment_entry(spec, "metric", "ranking");
  fsim::apply_experiment_entry(spec, "exact-pairwise", "exact-discrete");
  fsim::apply_experiment_entry(spec, "max-size", "600");
  fsim::apply_experiment_entry(spec, "tail-tol", "1e-4");
  fsim::apply_experiment_entry(spec, "n", "2000");
  fsim::apply_experiment_entry(spec, "preset", "sprint_5tuple");
  fsim::apply_experiment_entry(spec, "beta", "2.5");
  fsim::apply_experiment_entry(spec, "rate", "0.2");
  fsim::apply_experiment_entry(spec, "sweep t", "5,10,25");
  CaptureSink sink;
  EXPECT_EQ(fsim::run_experiment(spec, sink), 3u);
  ASSERT_EQ(sink.rows.size(), 3u);

  flowrank::core::DiscreteContextConfig cfg;
  cfg.p = 0.2;
  cfg.size_pmf =
      std::make_shared<flowrank::dist::Discretized>(fsim::make_size_distribution(spec));
  cfg.max_size = 600;
  cfg.tail_tolerance = 1e-4;
  const flowrank::core::DiscreteModelContext context(cfg);
  const auto pbar_col = column_index(sink, "mean_pair_misranking");
  const auto metric_col = column_index(sink, "metric");
  const auto pairs_col = column_index(sink, "pair_count");
  std::size_t row = 0;
  for (const std::int64_t t : {5, 10, 25}) {
    const auto expected = context.evaluate(2000, t);
    EXPECT_EQ(sink.rows[row][pbar_col],
              fr::Value(expected.mean_pair_misranking).text())
        << "row " << row;
    EXPECT_EQ(sink.rows[row][metric_col], fr::Value(expected.metric).text())
        << "row " << row;
    const double pairs = 0.5 * (2.0 * 2000 - t - 1) * t;
    EXPECT_EQ(sink.rows[row][pairs_col], fr::Value(pairs).text()) << "row " << row;
    ++row;
  }

  // One context built, three cells served.
  bool found = false;
  for (const auto& [key, value] : sink.spec_echo) {
    if (key == "exact-discrete-contexts") {
      found = true;
      EXPECT_EQ(value, "built=1,cells=3,reused=2");
    }
  }
  EXPECT_TRUE(found) << "run metadata must report context reuse";

  // The guard: exact-discrete is a ranking-model axis.
  fsim::ExperimentSpec bad = spec;
  fsim::apply_experiment_entry(bad, "metric", "detection");
  CaptureSink sink2;
  EXPECT_THROW(fsim::run_experiment(bad, sink2), std::invalid_argument);
}

TEST(ExperimentEngine, McMatchesRunBinnedSimulation) {
  fsim::ExperimentSpec spec;
  fsim::apply_experiment_entry(spec, "model", "mc");
  fsim::apply_experiment_entry(spec, "preset", "sprint_5tuple");
  fsim::apply_experiment_entry(spec, "duration", "60");
  fsim::apply_experiment_entry(spec, "flow-rate", "300");
  fsim::apply_experiment_entry(spec, "trace-seed", "21");
  fsim::apply_experiment_entry(spec, "bin", "10");
  fsim::apply_experiment_entry(spec, "t", "5");
  fsim::apply_experiment_entry(spec, "rates", "0.01,0.1");
  fsim::apply_experiment_entry(spec, "runs", "5");
  fsim::apply_experiment_entry(spec, "seed", "3");
  fsim::apply_experiment_entry(spec, "threads", "1");
  CaptureSink sink;
  fsim::run_experiment(spec, sink);

  const auto trace = fsim::make_trace_source(spec)->flows();
  const auto direct = fsim::run_binned_simulation(trace, fsim::make_sim_config(spec));
  ASSERT_EQ(sink.rows.size(), direct.series.size() * direct.series[0].bins.size());
  const auto rate_col = column_index(sink, "rate");
  const auto mean_col = column_index(sink, "ranking_mean");
  const auto flows_col = column_index(sink, "flows");
  std::size_t row = 0;
  for (const auto& series : direct.series) {
    for (const auto& bin : series.bins) {
      EXPECT_EQ(sink.rows[row][rate_col], fr::Value(series.sampling_rate).text());
      EXPECT_EQ(sink.rows[row][flows_col],
                fr::Value(std::uint64_t{bin.flows_in_bin}).text());
      EXPECT_EQ(sink.rows[row][mean_col], fr::Value(bin.ranking.mean()).text());
      ++row;
    }
  }
}

TEST(ExperimentEngine, PacketWithoutEstimatorMatchesRunPacketLevelOnce) {
  const auto spec = packet_spec();
  CaptureSink sink;
  fsim::run_experiment(spec, sink);

  const auto trace = fsim::make_trace_source(spec)->flows();
  const auto direct = fsim::run_packet_level_once(trace, 0.2,
                                                  fsim::make_sim_config(spec),
                                                  spec.seed, 1);
  ASSERT_EQ(sink.rows.size(), direct.size());
  const auto ranking_col = column_index(sink, "ranking_swapped");
  for (std::size_t b = 0; b < direct.size(); ++b) {
    EXPECT_EQ(sink.rows[b][ranking_col],
              fr::Value(direct[b].ranking_swapped).text());
  }
}

// --- estimator stages under sampling ---------------------------------------

// The inversion estimator is a monotone transform of the sampled counts,
// so its rank metrics must match the raw-count pipeline exactly.
TEST(EstimatorStage, InversionMatchesRawCountMetrics) {
  auto spec = packet_spec();
  const auto trace = fsim::make_trace_source(spec)->flows();
  const auto config = fsim::make_sim_config(spec);
  const auto raw = fsim::run_packet_level_once(trace, 0.2, config, spec.seed, 1);
  fsim::EstimatorStage inversion;
  inversion.kind = fsim::EstimatorStage::Kind::kInversion;
  const auto estimated = fsim::run_packet_level_estimated(trace, 0.2, config,
                                                          spec.seed, 1, inversion);
  ASSERT_EQ(raw.size(), estimated.size());
  for (std::size_t b = 0; b < raw.size(); ++b) {
    EXPECT_DOUBLE_EQ(raw[b].ranking_swapped, estimated[b].metrics.ranking_swapped);
    EXPECT_DOUBLE_EQ(raw[b].detection_swapped,
                     estimated[b].metrics.detection_swapped);
    EXPECT_DOUBLE_EQ(raw[b].top_set_recall, estimated[b].metrics.top_set_recall);
  }
}

// Trackers fed through the experiment pipeline agree with direct calls
// on the same sampled stream — bit-identical estimates, at shards 1 and 4.
TEST(EstimatorStage, TrackersMatchDirectCallsAtAnyShardCount) {
  const auto base = packet_spec();
  const auto trace = fsim::make_trace_source(base)->flows();
  const auto config = fsim::make_sim_config(base);
  const double rate = 0.2;
  const std::uint64_t run_seed = base.seed;
  const std::size_t total_bins = 4;  // 40 s / 10 s
  const std::int64_t bin_ns = 10'000'000'000;

  // Direct reference: replay the identical sampled stream (same sampler,
  // same seed, same batching) into per-bin trackers.
  flowrank::sampler::BernoulliSampler bernoulli(rate, run_seed);
  ft::PacketStream stream(trace);
  std::vector<fp::PacketRecord> batch, selected;
  std::vector<std::unique_ptr<fe::SampleAndHold>> sah(total_bins);
  std::vector<std::unique_ptr<fe::SpaceSavingTracker>> ssv(total_bins);
  while (stream.next_batch(batch, 4096) > 0) {
    bernoulli.select_into(batch, selected);
    for (const auto& pkt : selected) {
      const auto bin = std::min(
          static_cast<std::size_t>(pkt.timestamp_ns / bin_ns), total_bins - 1);
      const auto key = fp::make_flow_key(pkt.tuple, config.definition);
      if (!sah[bin]) {
        sah[bin] = std::make_unique<fe::SampleAndHold>(
            0.1, 64, flowrank::util::mix_stream(run_seed, bin));
      }
      if (!ssv[bin]) ssv[bin] = std::make_unique<fe::SpaceSavingTracker>(32);
      sah[bin]->offer(key);
      ssv[bin]->offer(key);
    }
  }

  for (const bool use_sah : {true, false}) {
    fsim::EstimatorStage stage;
    stage.kind = use_sah ? fsim::EstimatorStage::Kind::kSampleAndHold
                         : fsim::EstimatorStage::Kind::kSpaceSaving;
    stage.slots = use_sah ? 64 : 32;
    stage.hold_probability = 0.1;

    std::vector<fsim::PacketBinResult> shard_results[2];
    std::size_t idx = 0;
    for (const std::size_t shards : {1u, 4u}) {
      shard_results[idx++] = fsim::run_packet_level_estimated(
          trace, rate, config, run_seed, shards, stage, /*collect_estimates=*/true);
    }
    ASSERT_EQ(shard_results[0].size(), shard_results[1].size());

    for (std::size_t b = 0; b < shard_results[0].size(); ++b) {
      // Shard bit-identity: every estimate and metric equal at 1 vs 4.
      ASSERT_EQ(shard_results[0][b].estimates.size(),
                shard_results[1][b].estimates.size());
      for (std::size_t i = 0; i < shard_results[0][b].estimates.size(); ++i) {
        EXPECT_EQ(shard_results[0][b].estimates[i].first,
                  shard_results[1][b].estimates[i].first);
        EXPECT_EQ(shard_results[0][b].estimates[i].second,
                  shard_results[1][b].estimates[i].second);
      }
      EXPECT_DOUBLE_EQ(shard_results[0][b].metrics.ranking_swapped,
                       shard_results[1][b].metrics.ranking_swapped);

      // Direct-call bit-identity: the engine's per-flow estimates equal
      // the reference trackers' (inverted by the sampling rate).
      std::map<fp::FlowKey, double> reference;
      if (use_sah) {
        if (sah[b]) {
          for (const auto& f : sah[b]->flows()) {
            reference[f.key] = f.estimated_packets / rate;
          }
        }
      } else {
        if (ssv[b]) {
          for (const auto& f : ssv[b]->flows()) {
            reference[f.key] = f.estimated_packets / rate;
          }
        }
      }
      std::size_t tracked_seen = 0;
      for (const auto& [key, estimate] : shard_results[0][b].estimates) {
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(estimate, 0.0);  // untracked flows rank as missed
        } else {
          EXPECT_EQ(estimate, it->second);  // bit-identical counts
          ++tracked_seen;
        }
      }
      EXPECT_EQ(tracked_seen, reference.size());
    }
  }
}

// Rank-metrics smoke test for the remaining estimator kinds: the
// estimated pipeline runs end to end and produces sane recall.
TEST(EstimatorStage, TcpSeqSmoke) {
  const auto spec = packet_spec();
  const auto trace = fsim::make_trace_source(spec)->flows();
  fsim::EstimatorStage stage;
  stage.kind = fsim::EstimatorStage::Kind::kTcpSeq;
  const auto bins = fsim::run_packet_level_estimated(
      trace, 0.2, fsim::make_sim_config(spec), spec.seed, 1, stage);
  ASSERT_FALSE(bins.empty());
  for (const auto& bin : bins) {
    if (bin.flows_in_bin < 5) continue;
    EXPECT_GE(bin.metrics.top_set_recall, 0.0);
    EXPECT_LE(bin.metrics.top_set_recall, 1.0);
    EXPECT_GT(bin.metrics.ranking_pairs, 0.0);
  }
}

// --- scenario_runner shim regression ---------------------------------------

TEST(ScenarioShim, ExportTraceRoundTrips) {
  fsim::ScenarioSpec spec;
  fsim::apply_scenario_entry(spec, "preset", "sprint_5tuple");
  fsim::apply_scenario_entry(spec, "duration", "20");
  fsim::apply_scenario_entry(spec, "flow-rate", "50");
  fsim::apply_scenario_entry(spec, "trace-seed", "5");
  const std::string path = ::testing::TempDir() + "export_regression.frt1";
  const std::size_t written = fsim::export_scenario_trace(spec, path);
  EXPECT_GT(written, 0u);

  // The exported file replays through the file trace source with the
  // same flow population the synthetic source generated.
  const auto synthetic = fsim::make_trace_source(spec)->flows();
  EXPECT_EQ(written, synthetic.flows.size());
  const auto loaded = ft::load_flow_records(path);
  ASSERT_EQ(loaded.size(), synthetic.flows.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].packets, synthetic.flows[i].packets);
  }

  fsim::ScenarioSpec replay;
  fsim::apply_scenario_entry(replay, "trace", path);
  const auto replayed = fsim::make_trace_source(replay)->flows();
  EXPECT_EQ(replayed.flows.size(), synthetic.flows.size());
  EXPECT_EQ(replayed.total_packets(), synthetic.total_packets());
  std::remove(path.c_str());
}

// --- mode = aggregate through the experiment engine -------------------------

TEST(AggregateExperiment, EmitsOneDegradedCoverageRowPerWindow) {
  fsim::ExperimentSpec spec;
  spec.name = "aggregate_test";
  fsim::apply_experiment_entry(spec, "model", "packet");
  fsim::apply_experiment_entry(spec, "mode", "aggregate");
  fsim::apply_experiment_entry(spec, "agents", "3");
  fsim::apply_experiment_entry(spec, "preset", "sprint_5tuple");
  fsim::apply_experiment_entry(spec, "duration", "20");
  fsim::apply_experiment_entry(spec, "flow-rate", "100");
  fsim::apply_experiment_entry(spec, "trace-seed", "33");
  fsim::apply_experiment_entry(spec, "bin", "5");
  fsim::apply_experiment_entry(spec, "t", "5");
  fsim::apply_experiment_entry(spec, "rates", "1.0");
  fsim::apply_experiment_entry(spec, "seed", "4");
  fsim::apply_experiment_entry(spec, "shards", "1");

  CaptureSink sink;
  const std::size_t rows = fsim::run_experiment(spec, sink);

  EXPECT_EQ(sink.columns, flowrank::agg::window_columns());
  EXPECT_EQ(sink.columns, fsim::experiment_columns(spec));
  ASSERT_EQ(rows, 4u);  // 20 s / 5 s windows
  ASSERT_EQ(sink.rows.size(), rows);

  // The engine ran the same fleet make_fleet_config() describes.
  const auto trace = fsim::make_trace_source(spec)->flows();
  std::vector<fr::Row> direct_rows;
  (void)flowrank::agg::run_fleet(
      trace, fsim::make_fleet_config(spec),
      [&](const flowrank::agg::MergedWindow& window) {
        direct_rows.push_back(flowrank::agg::window_row(window));
      });
  ASSERT_EQ(direct_rows.size(), sink.rows.size());
  for (std::size_t r = 0; r < direct_rows.size(); ++r) {
    ASSERT_EQ(direct_rows[r].size(), sink.rows[r].size());
    for (std::size_t c = 0; c < direct_rows[r].size(); ++c) {
      EXPECT_EQ(sink.rows[r][c], direct_rows[r][c].text());
    }
  }

  // Fault-free full-rate fleet: full coverage on every row.
  const auto coverage_col = column_index(sink, "coverage_fraction");
  const auto window_col = column_index(sink, "window");
  for (std::size_t r = 0; r < sink.rows.size(); ++r) {
    EXPECT_EQ(sink.rows[r][window_col], fr::Value(std::uint64_t(r)).text());
    EXPECT_EQ(sink.rows[r][coverage_col], fr::Value(1.0).text());
  }
}

TEST(AggregateExperiment, RejectsIncompatibleAxes) {
  const auto base = [] {
    fsim::ExperimentSpec spec;
    fsim::apply_experiment_entry(spec, "model", "packet");
    fsim::apply_experiment_entry(spec, "mode", "aggregate");
    fsim::apply_experiment_entry(spec, "rates", "0.5");
    return spec;
  };

  CaptureSink sink;
  {
    auto spec = base();
    fsim::apply_experiment_entry(spec, "model", "exact");
    EXPECT_THROW((void)fsim::run_experiment(spec, sink), std::invalid_argument);
  }
  {
    auto spec = base();
    fsim::SweepAxis axis;
    axis.param = "beta";
    axis.values = {1.2, 1.5};
    spec.sweeps.push_back(axis);
    EXPECT_THROW((void)fsim::run_experiment(spec, sink), std::invalid_argument);
  }
  {
    auto spec = base();
    fsim::apply_experiment_entry(spec, "estimator", "inversion");
    EXPECT_THROW((void)fsim::run_experiment(spec, sink), std::invalid_argument);
  }
}
