// Tests for core::DiscreteModelContext — the build-once compute layer
// for the exact discrete ranking model (Eqs. 1 and 3).
//
// The golden constants below are hexfloat captures of the historical
// single-threaded implementation's output; every kernel rewrite must
// reproduce them bit for bit (the repo's determinism contract).
//
// Suite names start with DiscreteModel so the full-suite TSan CI job
// dynamically checks the TaskPool-parallel table build.
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "flowrank/core/discrete_context.hpp"
#include "flowrank/core/discrete_model.hpp"
#include "flowrank/core/ranking_model.hpp"
#include "flowrank/core/sampling_planner.hpp"
#include "flowrank/dist/pareto.hpp"

namespace fc = flowrank::core;
namespace fd = flowrank::dist;

namespace {

std::shared_ptr<const fd::Discretized> pareto_pmf(double mean, double beta) {
  return std::make_shared<fd::Discretized>(
      std::make_unique<fd::Pareto>(fd::Pareto::from_mean(mean, beta)));
}

fc::DiscreteContextConfig context_config(double p, std::int64_t max_size,
                                         double beta) {
  fc::DiscreteContextConfig cfg;
  cfg.p = p;
  cfg.size_pmf = pareto_pmf(9.6, beta);
  cfg.max_size = max_size;
  cfg.tail_tolerance = 1e-4;
  return cfg;
}

fc::DiscreteModelResult one_shot(std::int64_t n, std::int64_t t, double p,
                                 std::int64_t max_size, double beta,
                                 bool gaussian = false) {
  fc::DiscreteModelConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.p = p;
  cfg.size_pmf = pareto_pmf(9.6, beta);
  cfg.max_size = max_size;
  cfg.tail_tolerance = 1e-4;
  cfg.gaussian_pairwise = gaussian;
  return fc::evaluate_discrete_ranking_model(cfg);
}

}  // namespace

// Hexfloat goldens captured from the pre-context implementation. These
// pin the full arithmetic stream: pmf recurrence, Eq. (1) k-sums, the
// triangular reduction order, and the Eq. (3) fold.
TEST(DiscreteModelContext, GoldenBitIdentity) {
  const struct {
    std::int64_t n, t;
    double p;
    std::int64_t max_size;
    double beta;
    bool gaussian;
    double pbar, metric;
  } goldens[] = {
      {2000, 5, 0.2, 600, 2.5, false, 0x1.221ee99750614p-9, 0x1.619ebda7b6b11p+4},
      {2000, 10, 0.2, 600, 2.5, false, 0x1.8458acbddd32ap-8, 0x1.d8c082a9515a3p+6},
      {5000, 20, 0.2, 600, 2.5, false, 0x1.ec9336f9545adp-9, 0x1.7704087f8ce7fp+8},
      {1000, 3, 0.35, 500, 2.5, false, 0x1.4be75c72f7be6p-10, 0x1.e536fae712ae1p+1},
      {1500, 4, 0.25, 400, 3.0, false, 0x1.1018279a8dcd6p-8, 0x1.8de952eaa51f3p+4},
      {1500, 4, 0.25, 500, 2.5, true, 0x1.83dbef380b298p-10, 0x1.1b9a60facaa97p+3},
  };
  for (const auto& g : goldens) {
    const auto r = one_shot(g.n, g.t, g.p, g.max_size, g.beta, g.gaussian);
    EXPECT_EQ(g.pbar, r.mean_pair_misranking)
        << "n=" << g.n << " t=" << g.t << " p=" << g.p;
    EXPECT_EQ(g.metric, r.metric) << "n=" << g.n << " t=" << g.t << " p=" << g.p;
  }
}

// One context, many (n, t) cells: sweep reuse must be bit-identical to
// rebuilding from scratch for every cell.
TEST(DiscreteModelContext, SweepReuseMatchesOneShot) {
  const fc::DiscreteModelContext context(context_config(0.2, 600, 2.5));
  const std::int64_t cells[][2] = {{2000, 5}, {2000, 10}, {2000, 25}, {5000, 20}};
  for (const auto& cell : cells) {
    const auto reused = context.evaluate(cell[0], cell[1]);
    const auto fresh = one_shot(cell[0], cell[1], 0.2, 600, 2.5);
    EXPECT_EQ(fresh.mean_pair_misranking, reused.mean_pair_misranking);
    EXPECT_EQ(fresh.metric, reused.metric);
  }
}

// The determinism contract: the TaskPool-parallel table build returns the
// same bits at any thread count — the cached reductions and every
// evaluation must match the single-threaded build exactly.
TEST(DiscreteModelContext, ParallelBuildBitIdentical) {
  auto cfg = context_config(0.2, 600, 2.5);
  cfg.num_threads = 1;
  const fc::DiscreteModelContext baseline(cfg);
  const auto r1 = baseline.evaluate(2000, 5);
  for (std::size_t threads : {2u, 4u, 7u}) {
    cfg.num_threads = threads;
    const fc::DiscreteModelContext parallel(cfg);
    ASSERT_EQ(baseline.smaller_pair_sums().size(),
              parallel.smaller_pair_sums().size());
    EXPECT_EQ(baseline.smaller_pair_sums(), parallel.smaller_pair_sums())
        << "threads=" << threads;
    EXPECT_EQ(baseline.larger_pair_sums(), parallel.larger_pair_sums())
        << "threads=" << threads;
    const auto rt = parallel.evaluate(2000, 5);
    EXPECT_EQ(r1.mean_pair_misranking, rt.mean_pair_misranking);
    EXPECT_EQ(r1.metric, rt.metric);
  }
}

// The discrete model is the ground truth the continuous quadrature
// approximates; at modest scale the two must land close together.
TEST(DiscreteModelContext, AgreesWithContinuousModel) {
  fc::RankingModelConfig cont;
  cont.n = 2000;
  cont.t = 10;
  cont.p = 0.2;
  cont.size_dist = std::make_shared<fd::Pareto>(fd::Pareto::from_mean(9.6, 2.5));
  const auto continuous = fc::evaluate_ranking_model(cont);
  const auto discrete = one_shot(2000, 10, 0.2, 600, 2.5);
  ASSERT_GT(continuous.mean_pair_misranking, 0.0);
  const double ratio =
      discrete.mean_pair_misranking / continuous.mean_pair_misranking;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  // Same pair-count convention, so metrics agree to the same factor.
  const double pair_count = 0.5 * (2.0 * 2000 - 10 - 1) * 10;
  EXPECT_DOUBLE_EQ(discrete.metric,
                   discrete.mean_pair_misranking * pair_count);
}

// The gated support window is a real approximation: it must change the
// bit stream (it is not a free lunch) and it must respect the documented
// one-sided error bound of 2 * window_tolerance * N / t on pbar.
TEST(DiscreteModelContext, WindowedKSumBoundedError) {
  const double tol = 1e-4;
  auto exact_cfg = context_config(0.2, 600, 2.5);
  auto windowed_cfg = exact_cfg;
  windowed_cfg.window_tolerance = tol;
  const fc::DiscreteModelContext exact(exact_cfg);
  const fc::DiscreteModelContext windowed(windowed_cfg);
  EXPECT_FALSE(exact.windowed());
  EXPECT_TRUE(windowed.windowed());
  const std::int64_t n = 2000, t = 5;
  const auto re = exact.evaluate(n, t);
  const auto rw = windowed.evaluate(n, t);
  EXPECT_NE(re.mean_pair_misranking, rw.mean_pair_misranking)
      << "window_tolerance > 0 must not silently reproduce the exact stream";
  const double bound = 2.0 * tol * static_cast<double>(n) / static_cast<double>(t);
  EXPECT_NEAR(re.mean_pair_misranking, rw.mean_pair_misranking, bound);
  const double pair_count = 0.5 * (2.0 * n - t - 1) * t;
  EXPECT_NEAR(re.metric, rw.metric, bound * pair_count);
}

// Discrete planner overload: bisection against the exact model.
TEST(DiscreteModelPlanner, FindsFeasibleRate) {
  fc::DiscreteModelConfig cfg;
  cfg.n = 2000;
  cfg.t = 10;
  cfg.size_pmf = pareto_pmf(9.6, 2.5);
  cfg.max_size = 400;
  cfg.tail_tolerance = 1e-3;
  const auto plan = fc::plan_sampling_rate(cfg, 1.0, 1e-4, 0.999);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.sampling_rate, 1e-4);
  EXPECT_LT(plan.sampling_rate, 0.999);
  EXPECT_LE(plan.metric, 1.0 + 1e-9);
  // The returned rate really achieves the target under the exact model.
  cfg.p = plan.sampling_rate;
  cfg.t = 10;
  const auto at_rate = fc::evaluate_discrete_ranking_model(cfg);
  EXPECT_LE(at_rate.metric, 1.0 + 1e-6);
}

TEST(DiscreteModelContext, ValidationErrors) {
  auto cfg = context_config(0.2, 600, 2.5);
  {
    auto bad = cfg;
    bad.size_pmf = nullptr;
    EXPECT_THROW(fc::DiscreteModelContext{bad}, std::invalid_argument);
  }
  for (double p : {0.0, 1.0, -0.1, 1.5}) {
    auto bad = cfg;
    bad.p = p;
    EXPECT_THROW(fc::DiscreteModelContext{bad}, std::invalid_argument);
  }
  {
    // A heavy Pareto tail above a tiny support cap exceeds the tolerance.
    auto bad = cfg;
    bad.max_size = 20;
    bad.tail_tolerance = 1e-6;
    EXPECT_THROW(fc::DiscreteModelContext{bad}, std::invalid_argument);
  }
  {
    // The window knob is a pmf mass in [0, 0.1), not a time window.
    auto bad = cfg;
    bad.window_tolerance = 0.5;
    EXPECT_THROW(fc::DiscreteModelContext{bad}, std::invalid_argument);
  }
  const fc::DiscreteModelContext context(cfg);
  EXPECT_THROW(context.evaluate(2000, 0), std::invalid_argument);
  EXPECT_THROW(context.evaluate(2000, 2001), std::invalid_argument);
  EXPECT_NO_THROW(context.evaluate(2000, 2000));
}
