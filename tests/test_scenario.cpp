// Tests for the workload layer: pluggable trace sources (synthetic, FRT1
// file replay, multi-epoch concatenation), the ON/OFF bursty arrival
// model, the mixture flow-size distribution, and declarative
// sim::ScenarioSpec parsing (file + CLI overrides) driving the pipeline
// end to end with no per-scenario C++.
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/dist/mixture.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/sim/scenario.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/trace/trace_io.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/rng.hpp"

namespace fd = flowrank::dist;
namespace fsim = flowrank::sim;
namespace ft = flowrank::trace;

namespace {

ft::FlowTraceConfig tiny_sprint(std::uint64_t seed = 3) {
  auto cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, seed);
  cfg.duration_s = 10.0;
  cfg.flow_rate_per_s = 40.0;
  return cfg;
}

std::string write_temp(const std::string& filename, const std::string& contents) {
  const std::string path = ::testing::TempDir() + filename;
  std::ofstream os(path);
  os << contents;
  return path;
}

}  // namespace

// ---------------------------------------------------------------------------
// Mixture distribution
// ---------------------------------------------------------------------------

TEST(Mixture, CcdfIsWeightedSumAndQuantileInverts) {
  const auto heavy = std::make_shared<fd::Pareto>(fd::Pareto::from_mean(30.0, 1.3));
  const auto light = std::make_shared<fd::Pareto>(fd::Pareto::from_mean(5.0, 2.5));
  const fd::Mixture mix({{1.0, heavy}, {3.0, light}});

  for (double x : {2.0, 5.0, 20.0, 200.0}) {
    EXPECT_NEAR(mix.ccdf(x), 0.25 * heavy->ccdf(x) + 0.75 * light->ccdf(x), 1e-12);
  }
  EXPECT_NEAR(mix.mean(), 0.25 * heavy->mean() + 0.75 * light->mean(), 1e-9);
  for (double y : {0.9, 0.5, 0.1, 0.01, 1e-4}) {
    EXPECT_NEAR(mix.ccdf(mix.tail_quantile(y)), y, 1e-6) << "y " << y;
  }
  EXPECT_DOUBLE_EQ(mix.ccdf(mix.min_size()), 1.0);
}

TEST(Mixture, SampleMeanTracksAnalyticMean) {
  const fd::Mixture mix(
      {{1.0, std::make_shared<fd::Pareto>(fd::Pareto::from_mean(10.0, 2.5))},
       {1.0, std::make_shared<fd::Pareto>(fd::Pareto::from_mean(4.0, 3.0))}});
  auto engine = flowrank::util::make_engine(5);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += mix.sample(engine);
  EXPECT_NEAR(acc / n, mix.mean(), 0.35);
}

TEST(Mixture, RejectsDegenerateInput) {
  EXPECT_THROW(fd::Mixture{{}}, std::invalid_argument);
  EXPECT_THROW(fd::Mixture({{1.0, nullptr}}), std::invalid_argument);
  EXPECT_THROW(
      fd::Mixture({{0.0, std::make_shared<fd::Pareto>(2.0, 1.5)}}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ON/OFF bursty arrivals
// ---------------------------------------------------------------------------

TEST(OnOffArrivals, DisabledKeepsHistoricalTraceBitIdentical) {
  // The on_off field must not perturb the generator's draw sequence when
  // disabled: old seeds keep producing the exact same flows.
  auto plain = tiny_sprint();
  auto with_field = tiny_sprint();
  with_field.on_off.enabled = false;
  with_field.on_off.on_factor = 99.0;  // ignored while disabled
  const auto a = ft::generate_flow_trace(plain);
  const auto b = ft::generate_flow_trace(with_field);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].start_s, b.flows[i].start_s);
    EXPECT_EQ(a.flows[i].packets, b.flows[i].packets);
    EXPECT_EQ(a.flows[i].tuple.src_ip, b.flows[i].tuple.src_ip);
  }
}

TEST(OnOffArrivals, BurstsConcentrateArrivals) {
  auto cfg = tiny_sprint(9);
  cfg.duration_s = 200.0;
  cfg.flow_rate_per_s = 50.0;
  cfg.on_off.enabled = true;
  cfg.on_off.mean_on_s = 2.0;
  cfg.on_off.mean_off_s = 8.0;
  cfg.on_off.on_factor = 5.0;
  cfg.on_off.off_factor = 0.0;  // silent lulls
  const auto trace = ft::generate_flow_trace(cfg);
  ASSERT_GT(trace.flows.size(), 100u);
  // Flows stay sorted and inside the trace.
  for (std::size_t i = 1; i < trace.flows.size(); ++i) {
    EXPECT_LE(trace.flows[i - 1].start_s, trace.flows[i].start_s);
  }
  EXPECT_GE(trace.flows.front().start_s, 0.0);
  EXPECT_LT(trace.flows.back().start_s, cfg.duration_s);
  // Burstiness: with 20% duty cycle at 5x rate, 1-second arrival counts
  // must be far more dispersed than Poisson (index of dispersion ~1).
  std::vector<int> per_second(static_cast<std::size_t>(cfg.duration_s), 0);
  for (const auto& flow : trace.flows) {
    ++per_second[static_cast<std::size_t>(flow.start_s)];
  }
  double mean = 0.0;
  for (int c : per_second) mean += c;
  mean /= static_cast<double>(per_second.size());
  double var = 0.0;
  for (int c : per_second) var += (c - mean) * (c - mean);
  var /= static_cast<double>(per_second.size());
  EXPECT_GT(var / mean, 2.0) << "arrivals look Poisson, not bursty";
}

TEST(OnOffArrivals, InvalidParametersThrow) {
  auto cfg = tiny_sprint();
  cfg.on_off.enabled = true;
  cfg.on_off.mean_on_s = 0.0;
  EXPECT_THROW((void)ft::generate_flow_trace(cfg), std::invalid_argument);
  cfg = tiny_sprint();
  cfg.on_off.enabled = true;
  cfg.on_off.on_factor = 0.0;
  cfg.on_off.off_factor = 0.0;
  EXPECT_THROW((void)ft::generate_flow_trace(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trace sources
// ---------------------------------------------------------------------------

TEST(TraceSource, SyntheticMatchesGeneratorExactly) {
  const ft::SyntheticTraceSource source(tiny_sprint(), "tiny");
  const auto from_source = source.flows();
  const auto direct = ft::generate_flow_trace(tiny_sprint());
  ASSERT_EQ(from_source.flows.size(), direct.flows.size());
  for (std::size_t i = 0; i < direct.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_source.flows[i].start_s, direct.flows[i].start_s);
    EXPECT_EQ(from_source.flows[i].packets, direct.flows[i].packets);
  }
  EXPECT_EQ(source.name(), "synthetic(tiny)");
}

TEST(TraceSource, FileReplayRoundTripsThroughPacketStream) {
  const auto trace = ft::generate_flow_trace(tiny_sprint(7));
  const std::string path = ::testing::TempDir() + "replay_source.frt1";
  ft::save_flow_records(path, trace.flows);

  ft::FileTraceSource::Options options;
  options.packet_size_bytes = trace.config.packet_size_bytes;
  options.seed = trace.config.seed;
  const ft::FileTraceSource source(path, options);
  const auto replayed = source.flows();
  ASSERT_EQ(replayed.flows.size(), trace.flows.size());
  EXPECT_GE(replayed.config.duration_s, trace.flows.back().start_s);

  // The replayed packets are the original packets: placement depends only
  // on (config seed, flow index), both preserved by the file round trip.
  ft::PacketStream original(trace);
  ft::PacketStream from_file(source);
  while (true) {
    auto a = original.next();
    auto b = from_file.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(a->timestamp_ns, b->timestamp_ns);
    EXPECT_EQ(a->tuple.src_ip, b->tuple.src_ip);
  }
  std::remove(path.c_str());
}

TEST(TraceSource, FileReplayMissingFileThrows) {
  const ft::FileTraceSource source("/nonexistent/missing.frt1");
  EXPECT_THROW((void)source.flows(), std::runtime_error);
}

TEST(TraceSource, ConcatOffsetsEpochsBackToBack) {
  auto epoch = std::make_shared<ft::SyntheticTraceSource>(tiny_sprint(4), "e");
  const ft::ConcatTraceSource concat({epoch, epoch, epoch}, /*gap_s=*/5.0);
  const auto trace = concat.flows();
  const auto single = epoch->flows();
  ASSERT_EQ(trace.flows.size(), 3 * single.flows.size());
  EXPECT_DOUBLE_EQ(trace.config.duration_s, 3 * 10.0 + 2 * 5.0);
  // Sorted overall; epoch k's flows live in [k*15, k*15+10).
  for (std::size_t i = 1; i < trace.flows.size(); ++i) {
    EXPECT_LE(trace.flows[i - 1].start_s, trace.flows[i].start_s);
  }
  const std::size_t n = single.flows.size();
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(trace.flows[k * n + i].start_s,
                       single.flows[i].start_s + 15.0 * static_cast<double>(k));
    }
  }
}

TEST(TraceSource, ConcatRejectsDegenerateInput) {
  EXPECT_THROW(ft::ConcatTraceSource{{}}, std::invalid_argument);
  EXPECT_THROW(ft::ConcatTraceSource({nullptr}), std::invalid_argument);
  auto epoch = std::make_shared<ft::SyntheticTraceSource>(tiny_sprint(), "e");
  EXPECT_THROW(ft::ConcatTraceSource({epoch}, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scenario specs
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, ParseDistGrammar) {
  const auto pareto = fsim::parse_dist("pareto:mean=9.6,beta=1.5");
  EXPECT_NEAR(pareto->mean(), 9.6, 1e-9);
  const auto mix = fsim::parse_dist(
      "pareto:mean=30,beta=1.3,weight=1|weibull:mean=6,shape=0.7,weight=3");
  EXPECT_NEAR(mix->mean(), 0.25 * 30.0 + 0.75 * 6.0, 1e-6);
  EXPECT_THROW((void)fsim::parse_dist("gaussian:mean=5"), std::invalid_argument);
  EXPECT_THROW((void)fsim::parse_dist("pareto:mean=5,typo=1"), std::invalid_argument);
}

TEST(ScenarioSpec, FileParsingAndCliOverrides) {
  const std::string path = write_temp("scenario_parse.scn",
                                      "# comment\n"
                                      "name   = parse test\n"
                                      "preset = abilene\n"
                                      "bin    = 15    # trailing comment\n"
                                      "rates  = 0.01,0.1\n"
                                      "ties   = lenient\n"
                                      "path   = packet\n"
                                      "onoff  = on=1,off=4\n"
                                      "definition = prefix24\n");
  auto spec = fsim::parse_scenario_file(path);
  EXPECT_EQ(spec.name, "parse test");
  EXPECT_EQ(spec.preset, "abilene");
  EXPECT_DOUBLE_EQ(spec.bin_seconds, 15.0);
  ASSERT_EQ(spec.sampling_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.sampling_rates[1], 0.1);
  EXPECT_EQ(spec.tie_policy, flowrank::metrics::TiePolicy::kLenient);
  EXPECT_EQ(spec.path, fsim::ExecutionPath::kPacket);
  EXPECT_TRUE(spec.on_off.enabled);
  EXPECT_DOUBLE_EQ(spec.on_off.mean_off_s, 4.0);
  EXPECT_EQ(spec.definition, flowrank::packet::FlowDefinition::kDstPrefix24);

  const char* argv[] = {"test", "--bin", "30", "--path", "count"};
  const flowrank::util::Cli cli(5, argv);
  fsim::apply_scenario_overrides(spec, cli);
  EXPECT_DOUBLE_EQ(spec.bin_seconds, 30.0);
  EXPECT_EQ(spec.path, fsim::ExecutionPath::kCount);
  std::remove(path.c_str());
}

TEST(ScenarioSpec, UnknownKeysAndValuesFailLoudly) {
  const std::string path =
      write_temp("scenario_bad_key.scn", "not_a_key = 1\n");
  EXPECT_THROW((void)fsim::parse_scenario_file(path), std::runtime_error);
  std::remove(path.c_str());
  ft::FlowTraceConfig cfg;  // silence unused-include warnings
  (void)cfg;
  fsim::ScenarioSpec spec;
  const char* argv[] = {"test", "--ties", "strict"};
  const flowrank::util::Cli cli(3, argv);
  EXPECT_THROW(fsim::apply_scenario_overrides(spec, cli), std::invalid_argument);
}

TEST(ScenarioSpec, ParseErrorsReportFileLineAndKey) {
  // A bad value on line 3 must name the file, the line and the key.
  const std::string path = write_temp(
      "scenario_bad_line.scn", "name = x\nbin = 10\nrates = nope\n");
  try {
    (void)fsim::parse_scenario_file(path);
    FAIL() << "expected flowrank::Error(kSpec)";
  } catch (const flowrank::Error& e) {
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kSpec);
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":3"), std::string::npos) << what;
    EXPECT_NE(what.find("key 'rates'"), std::string::npos) << what;
  }
  std::remove(path.c_str());

  // A line with no '=' is a grammar error at that line.
  const std::string path2 =
      write_temp("scenario_no_eq.scn", "name = x\njust words\n");
  try {
    (void)fsim::parse_scenario_file(path2);
    FAIL() << "expected flowrank::Error(kSpec)";
  } catch (const flowrank::Error& e) {
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kSpec);
    EXPECT_NE(std::string(e.what()).find(path2 + ":2"), std::string::npos);
  }
  std::remove(path2.c_str());

  // A missing file is an io error, not a spec error.
  try {
    (void)fsim::parse_scenario_file("/nonexistent/definitely_missing.scn");
    FAIL() << "expected flowrank::Error(kIo)";
  } catch (const flowrank::Error& e) {
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kIo);
  }
}

TEST(ScenarioSpec, MonitorKeysParseIntoMonitorOptions) {
  const std::string path = write_temp("scenario_monitor.scn",
                                      "mode = monitor\n"
                                      "window = 30\n"
                                      "snapshot-every = 2\n"
                                      "overload = shed\n"
                                      "budget = 4000\n"
                                      "ewma = 0.25\n"
                                      "watchdog-ms = 25\n"
                                      "on-stall = fail\n"
                                      "fault.corrupt = 0.01\n"
                                      "fault.truncate = 0.02\n"
                                      "fault.stall-every = 48\n"
                                      "fault.stall-ms = 40\n"
                                      "fault.burst-flows = 1500\n"
                                      "fault.burst-every = 45\n"
                                      "fault.burst-duration = 0.5\n"
                                      "fault.seed = 7\n");
  const fsim::ScenarioSpec spec = fsim::parse_scenario_file(path);
  std::remove(path.c_str());

  EXPECT_TRUE(spec.monitor.enabled);
  EXPECT_DOUBLE_EQ(spec.monitor.window_s, 30.0);
  EXPECT_EQ(spec.monitor.snapshot_every, 2u);
  EXPECT_TRUE(spec.monitor.shed);
  EXPECT_EQ(spec.monitor.window_packet_budget, 4000u);
  EXPECT_DOUBLE_EQ(spec.monitor.ewma_alpha, 0.25);
  EXPECT_EQ(spec.monitor.watchdog_ms, 25u);
  EXPECT_TRUE(spec.monitor.fail_on_stall);
  EXPECT_DOUBLE_EQ(spec.monitor.fault.corrupt_fraction, 0.01);
  EXPECT_DOUBLE_EQ(spec.monitor.fault.truncate_fraction, 0.02);
  EXPECT_EQ(spec.monitor.fault.stall_every_batches, 48u);
  EXPECT_EQ(spec.monitor.fault.stall_ms, 40u);
  EXPECT_EQ(spec.monitor.fault.burst_flows, 1500u);
  EXPECT_DOUBLE_EQ(spec.monitor.fault.burst_every_s, 45.0);
  EXPECT_DOUBLE_EQ(spec.monitor.fault.burst_duration_s, 0.5);
  EXPECT_EQ(spec.monitor.fault.seed, 7u);
  EXPECT_TRUE(spec.monitor.fault.any());

  // Monitor keys reject bad values like every other scenario key.
  fsim::ScenarioSpec s;
  EXPECT_THROW(fsim::apply_scenario_entry(s, "mode", "streaming"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "overload", "panic"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "ewma", "0"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "on-stall", "retry"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "fault.unknown", "1"),
               std::invalid_argument);

  // Monitor runs go through the experiment engine / MonitorLoop, not the
  // batch run_scenario driver.
  fsim::ScenarioSpec mon;
  fsim::apply_scenario_entry(mon, "mode", "monitor");
  mon.sampling_rates = {0.1};
  EXPECT_THROW((void)fsim::run_scenario(mon), std::invalid_argument);
}

TEST(ScenarioSpec, ThreadCapValidatedAtParseTime) {
  fsim::ScenarioSpec spec;
  const char* argv[] = {"test", "--threads", "100000"};
  const flowrank::util::Cli cli(3, argv);
  EXPECT_THROW(fsim::apply_scenario_overrides(spec, cli), std::invalid_argument);
}

TEST(ScenarioSpec, CountPathRunsEndToEnd) {
  fsim::ScenarioSpec spec;
  spec.duration_s = 10.0;
  spec.flow_rate_per_s = 40.0;
  spec.bin_seconds = 5.0;
  spec.top_t = 3;
  spec.sampling_rates = {0.2, 0.5};
  spec.runs = 3;
  spec.num_threads = 2;
  const auto result = fsim::run_scenario(spec);
  ASSERT_EQ(result.count.series.size(), 2u);
  EXPECT_EQ(result.count.series[0].bins.size(), 2u);
  EXPECT_GT(result.flow_count, 0u);
  EXPECT_GT(result.packet_count, result.flow_count);
}

TEST(ScenarioSpec, PacketPathMatchesDirectCall) {
  fsim::ScenarioSpec spec;
  spec.duration_s = 10.0;
  spec.flow_rate_per_s = 60.0;
  spec.trace_seed = 5;
  spec.bin_seconds = 2.5;
  spec.top_t = 3;
  spec.sampling_rates = {0.3};
  spec.path = fsim::ExecutionPath::kPacket;
  spec.num_shards = 2;
  const auto result = fsim::run_scenario(spec);
  ASSERT_EQ(result.packet.size(), 1u);

  const auto trace = fsim::make_trace_source(spec)->flows();
  const auto direct = flowrank::sim::run_packet_level_once(
      trace, 0.3, fsim::make_sim_config(spec), spec.seed, 1);
  ASSERT_EQ(result.packet[0].size(), direct.size());
  for (std::size_t b = 0; b < direct.size(); ++b) {
    EXPECT_EQ(result.packet[0][b].ranking_swapped, direct[b].ranking_swapped);
    EXPECT_EQ(result.packet[0][b].top_set_recall, direct[b].top_set_recall);
  }
}

TEST(ScenarioSpec, FileReplayScenarioRunsEndToEnd) {
  const auto trace = ft::generate_flow_trace(tiny_sprint(11));
  const std::string frt1 = ::testing::TempDir() + "scenario_replay.frt1";
  ft::save_flow_records(frt1, trace.flows);
  const std::string scn = write_temp("scenario_replay.scn",
                                     "name = replay\n"
                                     "trace = " + frt1 + "\n"
                                     "path = packet\n"
                                     "bin = 2.5\n"
                                     "t = 3\n"
                                     "rates = 0.5\n"
                                     "shards = 2\n");
  const auto spec = fsim::parse_scenario_file(scn);
  const auto result = fsim::run_scenario(spec);
  ASSERT_EQ(result.packet.size(), 1u);
  EXPECT_EQ(result.flow_count, trace.flows.size());
  std::remove(frt1.c_str());
  std::remove(scn.c_str());
}

// ---------------------------------------------------------------------------
// mode = aggregate (multi-vantage keys)
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, AggregateKeysParseIntoAggregateOptions) {
  const std::string path = write_temp("scenario_aggregate.scn",
                                      "mode = aggregate\n"
                                      "agents = 4\n"
                                      "split = packet\n"
                                      "deadline-ms = 100\n"
                                      "quarantine-after = 2\n"
                                      "readmit-after = 3\n"
                                      "summary = spacesaving\n"
                                      "summary-slots = 256\n"
                                      "union-capacity = 128\n"
                                      "chan.drop = 0.1\n"
                                      "chan.corrupt = 0.05\n"
                                      "chan.delay = 0.02\n"
                                      "chan.delay-windows = 2\n"
                                      "chan.duplicate = 0.01\n"
                                      "chan.outage-agent = 1\n"
                                      "chan.outage-from = 5\n"
                                      "chan.outage-windows = 3\n"
                                      "chan.seed = 99\n");
  const fsim::ScenarioSpec spec = fsim::parse_scenario_file(path);
  std::remove(path.c_str());

  EXPECT_TRUE(spec.aggregate.enabled);
  EXPECT_FALSE(spec.monitor.enabled);
  EXPECT_EQ(spec.aggregate.agents, 4u);
  EXPECT_EQ(spec.aggregate.split, flowrank::agg::FleetSplit::kPacket);
  EXPECT_EQ(spec.aggregate.deadline_ms, 100u);
  EXPECT_EQ(spec.aggregate.quarantine_after, 2u);
  EXPECT_EQ(spec.aggregate.readmit_after, 3u);
  EXPECT_EQ(spec.aggregate.summary, flowrank::agg::SummaryKind::kSpaceSaving);
  EXPECT_EQ(spec.aggregate.summary_slots, 256u);
  EXPECT_EQ(spec.aggregate.union_capacity, 128u);
  EXPECT_DOUBLE_EQ(spec.aggregate.chan.drop_fraction, 0.1);
  EXPECT_DOUBLE_EQ(spec.aggregate.chan.corrupt_fraction, 0.05);
  EXPECT_DOUBLE_EQ(spec.aggregate.chan.delay_fraction, 0.02);
  EXPECT_EQ(spec.aggregate.chan.delay_windows, 2u);
  EXPECT_DOUBLE_EQ(spec.aggregate.chan.duplicate_fraction, 0.01);
  EXPECT_EQ(spec.aggregate.chan.outage_agent, 1u);
  EXPECT_EQ(spec.aggregate.chan.outage_from, 5u);
  EXPECT_EQ(spec.aggregate.chan.outage_windows, 3u);
  EXPECT_EQ(spec.aggregate.chan.seed, 99u);
  EXPECT_TRUE(spec.aggregate.chan.any());

  // Aggregate keys validate like every other scenario key.
  fsim::ScenarioSpec s;
  EXPECT_THROW(fsim::apply_scenario_entry(s, "agents", "0"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "split", "striped"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "summary", "countmin"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "quarantine-after", "0"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "readmit-after", "0"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "summary-slots", "0"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "chan.drop", "1.5"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "chan.delay-windows", "0"),
               std::invalid_argument);
  EXPECT_THROW(fsim::apply_scenario_entry(s, "chan.unknown", "1"),
               std::invalid_argument);

  // Modes are mutually exclusive flags: the last mode key wins and
  // clears the others (a CLI override can re-mode a spec file).
  fsim::ScenarioSpec agg_spec;
  fsim::apply_scenario_entry(agg_spec, "mode", "aggregate");
  fsim::apply_scenario_entry(agg_spec, "mode", "monitor");
  EXPECT_TRUE(agg_spec.monitor.enabled);
  EXPECT_FALSE(agg_spec.aggregate.enabled);
  // Aggregate runs go through the experiment engine / agg::run_fleet,
  // not the batch driver.
  fsim::apply_scenario_entry(agg_spec, "mode", "aggregate");
  EXPECT_FALSE(agg_spec.monitor.enabled);
  agg_spec.sampling_rates = {0.1};
  EXPECT_THROW((void)fsim::run_scenario(agg_spec), std::invalid_argument);
}

// Satellite: an unknown key names the valid keys for the ACTIVE mode,
// so a typo in an aggregate spec is not answered with monitor keys.
TEST(ScenarioSpec, UnknownKeyHintNamesActiveModeKeys) {
  const auto message_for = [](const char* mode) {
    fsim::ScenarioSpec spec;
    if (mode != nullptr) fsim::apply_scenario_entry(spec, "mode", mode);
    try {
      fsim::apply_scenario_entry(spec, "bogus-key", "1");
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    ADD_FAILURE() << "unknown key accepted";
    return std::string();
  };

  const std::string batch = message_for(nullptr);
  EXPECT_NE(batch.find("unknown key 'bogus-key'"), std::string::npos) << batch;
  EXPECT_NE(batch.find("mode=batch"), std::string::npos) << batch;
  EXPECT_NE(batch.find("rates"), std::string::npos) << batch;
  EXPECT_EQ(batch.find("chan.drop"), std::string::npos) << batch;
  EXPECT_EQ(batch.find("fault.corrupt"), std::string::npos) << batch;

  const std::string monitor = message_for("monitor");
  EXPECT_NE(monitor.find("mode=monitor"), std::string::npos) << monitor;
  EXPECT_NE(monitor.find("fault.corrupt"), std::string::npos) << monitor;
  EXPECT_NE(monitor.find("watchdog-ms"), std::string::npos) << monitor;
  EXPECT_EQ(monitor.find("chan.drop"), std::string::npos) << monitor;

  const std::string aggregate = message_for("aggregate");
  EXPECT_NE(aggregate.find("mode=aggregate"), std::string::npos) << aggregate;
  EXPECT_NE(aggregate.find("chan.drop"), std::string::npos) << aggregate;
  EXPECT_NE(aggregate.find("quarantine-after"), std::string::npos) << aggregate;
  EXPECT_EQ(aggregate.find("fault.corrupt"), std::string::npos) << aggregate;
  EXPECT_EQ(aggregate.find("watchdog-ms"), std::string::npos) << aggregate;
}

TEST(ScenarioSpec, MakeFleetConfigMapsSpecOntoFleet) {
  fsim::ScenarioSpec spec;
  fsim::apply_scenario_entry(spec, "mode", "aggregate");
  fsim::apply_scenario_entry(spec, "agents", "5");
  fsim::apply_scenario_entry(spec, "bin", "30");
  fsim::apply_scenario_entry(spec, "t", "7");
  fsim::apply_scenario_entry(spec, "shards", "2");
  fsim::apply_scenario_entry(spec, "seed", "42");
  fsim::apply_scenario_entry(spec, "rates", "0.25");
  fsim::apply_scenario_entry(spec, "summary", "table");
  fsim::apply_scenario_entry(spec, "union-capacity", "64");
  fsim::apply_scenario_entry(spec, "chan.drop", "0.2");

  const flowrank::agg::FleetConfig config = fsim::make_fleet_config(spec);
  EXPECT_EQ(config.agents, 5u);
  EXPECT_DOUBLE_EQ(config.window_s, 30.0);
  EXPECT_DOUBLE_EQ(config.sampling_rate, 0.25);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.top_t, 7u);
  EXPECT_EQ(config.num_shards, 2u);
  EXPECT_EQ(config.union_capacity, 64u);
  EXPECT_DOUBLE_EQ(config.chan.drop_fraction, 0.2);

  // Not an aggregate spec -> no fleet config.
  fsim::ScenarioSpec batch;
  batch.sampling_rates = {0.1};
  EXPECT_THROW((void)fsim::make_fleet_config(batch), std::invalid_argument);
  // The fleet runs one rate; a rate sweep is a batch concept.
  fsim::ScenarioSpec multi;
  fsim::apply_scenario_entry(multi, "mode", "aggregate");
  multi.sampling_rates = {0.1, 0.5};
  EXPECT_THROW((void)fsim::make_fleet_config(multi), std::invalid_argument);
}

TEST(ScenarioSpec, ChurnTraceKeysParseAndBuildTheSource) {
  const std::string path = write_temp(
      "scenario_churn.scn",
      "trace = churn\n"
      "churn = population=200,rate=25,packets=8,flow-duration=0.5,tcp=0.8\n"
      "duration = 10\n"
      "rates = 0.1\n");
  const fsim::ScenarioSpec spec = fsim::parse_scenario_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(spec.trace, "churn");
  EXPECT_EQ(spec.churn.population, 200u);
  EXPECT_DOUBLE_EQ(spec.churn.churn_per_s, 25.0);
  EXPECT_DOUBLE_EQ(spec.churn.mean_packets, 8.0);
  EXPECT_DOUBLE_EQ(spec.churn.mean_duration_s, 0.5);
  EXPECT_DOUBLE_EQ(spec.churn.tcp_fraction, 0.8);

  // `trace = churn` must dispatch to the churn generator, not be taken
  // for a replay-file path.
  const auto source = fsim::make_trace_source(spec);
  EXPECT_NE(source->name().find("churn"), std::string::npos) << source->name();
  const auto trace = source->flows();
  EXPECT_FALSE(trace.flows.empty());

  // A typo inside the clause fails loudly.
  fsim::ScenarioSpec bad;
  EXPECT_THROW(fsim::apply_scenario_entry(bad, "churn", "populaton=10"),
               std::invalid_argument);
}

TEST(ScenarioSpec, SamplerSplitKeyParsesAndReachesSimConfig) {
  fsim::ScenarioSpec spec;
  EXPECT_FALSE(spec.sampler_split);  // gated off by default
  fsim::apply_scenario_entry(spec, "sampler-split", "on");
  EXPECT_TRUE(spec.sampler_split);
  EXPECT_TRUE(fsim::make_sim_config(spec).sampler_split);
  fsim::apply_scenario_entry(spec, "sampler-split", "off");
  EXPECT_FALSE(spec.sampler_split);
  EXPECT_FALSE(fsim::make_sim_config(spec).sampler_split);
  EXPECT_THROW(fsim::apply_scenario_entry(spec, "sampler-split", "maybe"),
               std::invalid_argument);

  // Both new keys show up in the unknown-key hint for batch mode.
  try {
    fsim::apply_scenario_entry(spec, "bogus-key", "1");
    ADD_FAILURE() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("churn"), std::string::npos) << what;
    EXPECT_NE(what.find("sampler-split"), std::string::npos) << what;
  }
}
