// Tests for flow keys, trace generation, packet expansion, bin counts and
// trace I/O.
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "flowrank/numeric/stats.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/flow_churn.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/trace/trace_io.hpp"

namespace fp = flowrank::packet;
namespace ft = flowrank::trace;

namespace {

ft::FlowTraceConfig small_sprint(double duration_s = 20.0, std::uint64_t seed = 42) {
  auto cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, seed);
  cfg.duration_s = duration_s;
  cfg.flow_rate_per_s = 200.0;  // scaled down for unit tests
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Flow keys
// ---------------------------------------------------------------------------

TEST(FlowKey, FiveTupleDistinguishesAllFields) {
  fp::FiveTuple base{0x0A000001, 0x0A000002, 1234, 80, fp::Protocol::kTcp};
  const auto key = make_flow_key(base, fp::FlowDefinition::kFiveTuple);
  for (int field = 0; field < 5; ++field) {
    fp::FiveTuple other = base;
    switch (field) {
      case 0: other.src_ip ^= 1; break;
      case 1: other.dst_ip ^= 1; break;
      case 2: other.src_port ^= 1; break;
      case 3: other.dst_port ^= 1; break;
      case 4: other.protocol = fp::Protocol::kUdp; break;
    }
    EXPECT_NE(make_flow_key(other, fp::FlowDefinition::kFiveTuple), key) << field;
  }
}

TEST(FlowKey, Prefix24AggregatesLastOctet) {
  fp::FiveTuple a{1, 0x0A0B0C01, 10, 20, fp::Protocol::kTcp};
  fp::FiveTuple b{2, 0x0A0B0CFF, 30, 40, fp::Protocol::kUdp};
  fp::FiveTuple c{2, 0x0A0B0D01, 30, 40, fp::Protocol::kUdp};
  EXPECT_EQ(make_flow_key(a, fp::FlowDefinition::kDstPrefix24),
            make_flow_key(b, fp::FlowDefinition::kDstPrefix24));
  EXPECT_NE(make_flow_key(a, fp::FlowDefinition::kDstPrefix24),
            make_flow_key(c, fp::FlowDefinition::kDstPrefix24));
}

TEST(FlowKey, HashSpreadsKeys) {
  fp::FlowKeyHash hash;
  std::unordered_set<std::size_t> seen;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    fp::FiveTuple tuple{i, i * 7 + 1, static_cast<std::uint16_t>(i),
                        static_cast<std::uint16_t>(i >> 2), fp::Protocol::kTcp};
    seen.insert(hash(make_flow_key(tuple, fp::FlowDefinition::kFiveTuple)));
  }
  EXPECT_GT(seen.size(), 9990u);  // essentially collision-free spread
}

TEST(FlowKey, Formatting) {
  EXPECT_EQ(fp::format_ipv4(0x7F000001), "127.0.0.1");
  fp::FiveTuple tuple{0x0A000001, 0xC0A80102, 5555, 80, fp::Protocol::kTcp};
  EXPECT_EQ(fp::format_five_tuple(tuple), "tcp 10.0.0.1:5555 -> 192.168.1.2:80");
  EXPECT_EQ(fp::to_string(fp::FlowDefinition::kFiveTuple), "5-tuple");
  EXPECT_EQ(fp::to_string(fp::FlowDefinition::kDstPrefix24), "/24 dst prefix");
}

// ---------------------------------------------------------------------------
// Flow trace generation
// ---------------------------------------------------------------------------

TEST(FlowTraceGenerator, RespectsArrivalRate) {
  auto cfg = small_sprint(/*duration_s=*/100.0);
  const auto trace = ft::generate_flow_trace(cfg);
  const double expected = cfg.duration_s * cfg.flow_rate_per_s;
  EXPECT_NEAR(static_cast<double>(trace.flows.size()), expected,
              5.0 * std::sqrt(expected));  // Poisson band
}

TEST(FlowTraceGenerator, MeanFlowSizeMatchesDistribution) {
  auto cfg = small_sprint(/*duration_s=*/200.0);
  const auto trace = ft::generate_flow_trace(cfg);
  flowrank::numeric::RunningStats sizes;
  for (const auto& f : trace.flows) sizes.add(static_cast<double>(f.packets));
  EXPECT_NEAR(sizes.mean(), 9.6, 2.0);  // heavy tail: generous band
}

TEST(FlowTraceGenerator, FlowsSortedAndInsideTrace) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  double prev = 0.0;
  for (const auto& f : trace.flows) {
    EXPECT_GE(f.start_s, prev);
    prev = f.start_s;
    EXPECT_GE(f.start_s, 0.0);
    EXPECT_LE(f.end_s(), trace.config.duration_s + 1e-9);
    EXPECT_GE(f.packets, 1u);
    EXPECT_EQ(f.bytes, f.packets * trace.config.packet_size_bytes);
  }
}

TEST(FlowTraceGenerator, DeterministicInSeed) {
  const auto a = ft::generate_flow_trace(small_sprint(20.0, 7));
  const auto b = ft::generate_flow_trace(small_sprint(20.0, 7));
  const auto c = ft::generate_flow_trace(small_sprint(20.0, 8));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.flows[0].tuple.src_ip, b.flows[0].tuple.src_ip);
  EXPECT_EQ(a.flows[0].packets, b.flows[0].packets);
  EXPECT_NE(a.flows.size(), c.flows.size());
}

TEST(FlowTraceGenerator, PresetsMatchPaperParameters) {
  const auto tuple5 = ft::FlowTraceConfig::sprint_5tuple();
  EXPECT_DOUBLE_EQ(tuple5.flow_rate_per_s, 2360.0);
  EXPECT_NEAR(tuple5.size_dist->mean(), 9.6, 1e-9);
  const auto prefix = ft::FlowTraceConfig::sprint_prefix24();
  EXPECT_DOUBLE_EQ(prefix.flow_rate_per_s, 350.0);
  EXPECT_NEAR(prefix.size_dist->mean(), 33.2, 1e-9);
  const auto abilene = ft::FlowTraceConfig::abilene();
  EXPECT_GT(abilene.flow_rate_per_s, tuple5.flow_rate_per_s);
  // Short tail: P{S > 100 mean} is zero for the bounded distribution.
  EXPECT_DOUBLE_EQ(abilene.size_dist->ccdf(abilene.size_dist->mean() * 400), 0.0);
}

TEST(FlowTraceGenerator, InvalidConfigThrows) {
  auto cfg = small_sprint();
  cfg.size_dist = nullptr;
  EXPECT_THROW((void)ft::generate_flow_trace(cfg), std::invalid_argument);
  cfg = small_sprint();
  cfg.duration_s = 0.0;
  EXPECT_THROW((void)ft::generate_flow_trace(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Packet expansion
// ---------------------------------------------------------------------------

TEST(PacketStream, EmitsEveryPacketInTimeOrder) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  ft::PacketStream stream(trace);
  std::int64_t prev = -1;
  std::uint64_t count = 0;
  while (auto pkt = stream.next()) {
    EXPECT_GE(pkt->timestamp_ns, prev);
    prev = pkt->timestamp_ns;
    ++count;
  }
  EXPECT_EQ(count, trace.total_packets());
}

TEST(PacketStream, PacketsStayInsideFlowLifetimes) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  const auto packets = ft::expand_trace(trace);
  // Group by 5-tuple and check spans.
  std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> spans;
  for (const auto& p : packets) {
    const auto key = (static_cast<std::uint64_t>(p.tuple.src_ip) << 32) | p.tuple.dst_ip;
    auto [it, fresh] = spans.try_emplace(key, p.timestamp_ns, p.timestamp_ns);
    if (!fresh) {
      it->second.first = std::min(it->second.first, p.timestamp_ns);
      it->second.second = std::max(it->second.second, p.timestamp_ns);
    }
  }
  for (const auto& f : trace.flows) {
    const auto key = (static_cast<std::uint64_t>(f.tuple.src_ip) << 32) | f.tuple.dst_ip;
    const auto it = spans.find(key);
    ASSERT_NE(it, spans.end());
    EXPECT_GE(it->second.first, static_cast<std::int64_t>(f.start_s * 1e9) - 1);
    EXPECT_LE(it->second.second,
              static_cast<std::int64_t>((f.end_s()) * 1e9) + 1);
  }
}

TEST(PacketStream, TcpFlowsCarryMonotoneSequenceNumbers) {
  auto cfg = small_sprint();
  cfg.tcp_fraction = 1.0;
  const auto trace = ft::generate_flow_trace(cfg);
  const auto packets = ft::expand_trace(trace);
  std::map<std::uint32_t, std::uint32_t> max_seq;  // src_ip -> max seq
  bool saw_nonzero = false;
  for (const auto& p : packets) {
    EXPECT_EQ(p.tcp_seq % trace.config.packet_size_bytes, 0u);
    if (p.tcp_seq > 0) saw_nonzero = true;
    auto [it, fresh] = max_seq.try_emplace(p.tuple.src_ip, p.tcp_seq);
    if (!fresh) it->second = std::max(it->second, p.tcp_seq);
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(PacketStream, DeterministicPlacement) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  const auto a = ft::expand_trace(trace, /*seed=*/5);
  const auto b = ft::expand_trace(trace, /*seed=*/5);
  const auto c = ft::expand_trace(trace, /*seed=*/6);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp_ns, b[i].timestamp_ns);
    if (a[i].timestamp_ns != c[i].timestamp_ns) any_difference = true;
  }
  EXPECT_TRUE(any_difference);  // different placement seed shifts packets
}

// ---------------------------------------------------------------------------
// Bin counts (the fast path) vs packet expansion (ground truth)
// ---------------------------------------------------------------------------

TEST(BinCounts, TotalsMatchTraceExactly) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  const auto counts =
      ft::bin_flow_counts(trace, 5.0, fp::FlowDefinition::kFiveTuple);
  std::uint64_t total = 0;
  for (const auto& bin : counts.bins) {
    for (const auto& f : bin) total += f.packets;
  }
  EXPECT_EQ(total, trace.total_packets());
}

TEST(BinCounts, MarginalsMatchPacketExpansionStatistically) {
  // The multinomial split must induce the same per-bin totals law as
  // uniform packet placement: compare per-bin packet totals.
  auto cfg = small_sprint(/*duration_s=*/30.0, /*seed=*/11);
  const auto trace = ft::generate_flow_trace(cfg);
  const double bin_s = 5.0;
  const auto counts = ft::bin_flow_counts(trace, bin_s, fp::FlowDefinition::kFiveTuple);

  std::vector<double> count_totals(counts.bins.size(), 0.0);
  for (std::size_t b = 0; b < counts.bins.size(); ++b) {
    for (const auto& f : counts.bins[b]) {
      count_totals[b] += static_cast<double>(f.packets);
    }
  }
  const auto packets = ft::expand_trace(trace);
  std::vector<double> packet_totals(counts.bins.size(), 0.0);
  for (const auto& p : packets) {
    const auto b = static_cast<std::size_t>(p.timestamp_ns / 1e9 / bin_s);
    if (b < packet_totals.size()) packet_totals[b] += 1.0;
  }
  for (std::size_t b = 0; b < counts.bins.size(); ++b) {
    // Same flows, same overlaps; only the multinomial draws differ. Bands
    // are a few sigma of a binomial with ~bin total trials.
    const double sigma = std::sqrt(std::max(16.0, packet_totals[b]));
    EXPECT_NEAR(count_totals[b], packet_totals[b], 6.0 * sigma) << "bin " << b;
  }
}

TEST(BinCounts, Prefix24MergesFlows) {
  auto cfg = small_sprint();
  const auto trace = ft::generate_flow_trace(cfg);
  const auto by_tuple =
      ft::bin_flow_counts(trace, 10.0, fp::FlowDefinition::kFiveTuple);
  const auto by_prefix =
      ft::bin_flow_counts(trace, 10.0, fp::FlowDefinition::kDstPrefix24);
  for (std::size_t b = 0; b < by_tuple.bins.size(); ++b) {
    EXPECT_LE(by_prefix.bins[b].size(), by_tuple.bins[b].size());
  }
}

TEST(BinCounts, RejectsBadBinWidth) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  EXPECT_THROW((void)ft::bin_flow_counts(trace, 0.0, fp::FlowDefinition::kFiveTuple),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trace I/O
// ---------------------------------------------------------------------------

TEST(TraceIo, BinaryRoundTrip) {
  const auto trace = ft::generate_flow_trace(small_sprint());
  std::stringstream buffer;
  ft::write_flow_records(buffer, trace.flows);
  const auto loaded = ft::read_flow_records(buffer);
  ASSERT_EQ(loaded.size(), trace.flows.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].packets, trace.flows[i].packets);
    EXPECT_EQ(loaded[i].tuple.src_ip, trace.flows[i].tuple.src_ip);
    EXPECT_EQ(loaded[i].tuple.protocol, trace.flows[i].tuple.protocol);
    EXPECT_DOUBLE_EQ(loaded[i].start_s, trace.flows[i].start_s);
    EXPECT_DOUBLE_EQ(loaded[i].duration_s, trace.flows[i].duration_s);
  }
}

TEST(TraceIo, RejectsCorruptInput) {
  std::stringstream bad("not a trace at all");
  EXPECT_THROW((void)ft::read_flow_records(bad), std::runtime_error);
  // Truncated payload.
  const auto trace = ft::generate_flow_trace(small_sprint(2.0));
  std::stringstream buffer;
  ft::write_flow_records(buffer, trace.flows);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW((void)ft::read_flow_records(truncated), std::runtime_error);
}

TEST(TraceIo, CsvExportHasHeaderAndRows) {
  const auto trace = ft::generate_flow_trace(small_sprint(2.0));
  std::stringstream csv;
  ft::export_flow_records_csv(csv, trace.flows);
  std::string line;
  std::getline(csv, line);
  EXPECT_EQ(line,
            "start_s,duration_s,packets,bytes,proto,src_ip,src_port,dst_ip,dst_port");
  std::size_t rows = 0;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, trace.flows.size());
}

// ---------------------------------------------------------------------------
// Flow-churn trace source (pktgen-style bounded population + turnover)
// ---------------------------------------------------------------------------

namespace {

ft::FlowChurnConfig small_churn() {
  ft::FlowChurnConfig cfg;
  cfg.duration_s = 10.0;
  cfg.population = 100;
  cfg.churn_per_s = 50.0;
  cfg.flow_rate_per_s = 400.0;
  cfg.mean_packets = 8.0;
  cfg.mean_duration_s = 0.5;
  cfg.seed = 5;
  return cfg;
}

std::size_t distinct_tuples(const ft::FlowTrace& trace) {
  std::unordered_set<fp::FlowKey, fp::FlowKeyHash> seen;
  for (const auto& flow : trace.flows) {
    seen.insert(make_flow_key(flow.tuple, fp::FlowDefinition::kFiveTuple));
  }
  return seen.size();
}

}  // namespace

TEST(FlowChurnTrace, DeterministicInSeedAndSortedInsideTrace) {
  const auto cfg = small_churn();
  const auto a = ft::FlowChurnTraceSource(cfg).flows();
  const auto b = ft::FlowChurnTraceSource(cfg).flows();
  ASSERT_FALSE(a.flows.empty());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].tuple.src_ip, b.flows[i].tuple.src_ip);
    EXPECT_EQ(a.flows[i].start_s, b.flows[i].start_s);
    EXPECT_EQ(a.flows[i].packets, b.flows[i].packets);
    EXPECT_EQ(a.flows[i].bytes, b.flows[i].bytes);
    if (i > 0) EXPECT_LE(a.flows[i - 1].start_s, a.flows[i].start_s);
    EXPECT_GE(a.flows[i].start_s, 0.0);
    EXPECT_LE(a.flows[i].end_s(), cfg.duration_s + 1e-9);
    EXPECT_GE(a.flows[i].packets, 1u);
  }
  // A different seed is a different trace.
  auto other = cfg;
  other.seed = 6;
  EXPECT_NE(ft::FlowChurnTraceSource(other).flows().flows.size() * 31 +
                distinct_tuples(ft::FlowChurnTraceSource(other).flows()),
            a.flows.size() * 31 + distinct_tuples(a));
}

TEST(FlowChurnTrace, PopulationBoundsTupleReuse) {
  // Zero churn: every arrival reuses one of `population` slots, so the
  // trace revisits the same tuples over and over (the table hit-rate
  // stress the generator exists for).
  auto cfg = small_churn();
  cfg.churn_per_s = 0.0;
  const auto steady = ft::FlowChurnTraceSource(cfg).flows();
  EXPECT_GT(steady.flows.size(), cfg.population);  // arrivals outnumber slots
  EXPECT_LE(distinct_tuples(steady), cfg.population);

  // With churn, replaced slots introduce fresh tuples beyond the
  // population bound (deterministic for the fixed seed).
  const auto churning = ft::FlowChurnTraceSource(small_churn()).flows();
  EXPECT_GT(distinct_tuples(churning), small_churn().population);
}

TEST(FlowChurnTrace, InvalidConfigThrows) {
  const auto expect_throw = [](auto mutate) {
    auto cfg = small_churn();
    mutate(cfg);
    EXPECT_THROW(ft::FlowChurnTraceSource{cfg}, std::invalid_argument);
  };
  expect_throw([](ft::FlowChurnConfig& c) { c.duration_s = 0.0; });
  expect_throw([](ft::FlowChurnConfig& c) { c.population = 0; });
  expect_throw([](ft::FlowChurnConfig& c) { c.churn_per_s = -1.0; });
  expect_throw([](ft::FlowChurnConfig& c) { c.flow_rate_per_s = 0.0; });
  expect_throw([](ft::FlowChurnConfig& c) { c.mean_packets = 0.5; });
  expect_throw([](ft::FlowChurnConfig& c) { c.mean_duration_s = 0.0; });
  expect_throw([](ft::FlowChurnConfig& c) { c.tcp_fraction = 1.5; });
}
