// Unit and property tests for the numeric substrate.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/numeric/binomial.hpp"
#include "flowrank/numeric/incbeta.hpp"
#include "flowrank/numeric/quadrature.hpp"
#include "flowrank/numeric/roots.hpp"
#include "flowrank/numeric/special.hpp"
#include "flowrank/numeric/stats.hpp"
#include "flowrank/util/rng.hpp"

namespace fn = flowrank::numeric;

TEST(Special, LogFactorialMatchesDirectProduct) {
  double acc = 0.0;
  for (int n = 1; n <= 200; ++n) {
    acc += std::log(static_cast<double>(n));
    EXPECT_NEAR(fn::log_factorial(n), acc, 1e-9) << "n=" << n;
  }
}

TEST(Special, LogFactorialLargeUsesLgamma) {
  EXPECT_NEAR(fn::log_factorial(5000), std::lgamma(5001.0), 1e-9);
}

TEST(Special, LogChooseSymmetry) {
  for (int n = 0; n <= 60; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(fn::log_choose(n, k), fn::log_choose(n, n - k), 1e-10);
    }
  }
}

TEST(Special, LogChooseOutOfRangeIsMinusInf) {
  EXPECT_TRUE(std::isinf(fn::log_choose(10, -1)));
  EXPECT_TRUE(std::isinf(fn::log_choose(10, 11)));
}

TEST(Special, LogChoosePascalIdentity) {
  // C(n,k) = C(n-1,k-1) + C(n-1,k)
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      const double lhs = fn::log_choose(n, k);
      const double rhs =
          fn::log_sum_exp(fn::log_choose(n - 1, k - 1), fn::log_choose(n - 1, k));
      EXPECT_NEAR(lhs, rhs, 1e-9);
    }
  }
}

TEST(Special, LogSumExpHandlesInfinity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(fn::log_sum_exp(ninf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(fn::log_sum_exp(3.0, ninf), 3.0);
}

TEST(Special, Log1mExpIdentity) {
  for (double x : {-1e-8, -0.1, -0.5, -1.0, -5.0, -30.0}) {
    EXPECT_NEAR(std::exp(fn::log1m_exp(x)), 1.0 - std::exp(x), 1e-12);
  }
}

TEST(Special, NormalCdfSymmetry) {
  for (double x : {0.0, 0.5, 1.0, 2.5, 6.0}) {
    EXPECT_NEAR(fn::normal_cdf(x) + fn::normal_cdf(-x), 1.0, 1e-14);
    EXPECT_NEAR(fn::normal_sf(x), fn::normal_cdf(-x), 1e-300);
  }
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(fn::normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(fn::normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(fn::normal_sf(6.0), 9.865876e-10, 1e-14);
}

TEST(Special, DomainErrors) {
  EXPECT_THROW((void)fn::log_gamma(0.0), std::domain_error);
  EXPECT_THROW((void)fn::log_factorial(-1), std::domain_error);
  EXPECT_THROW((void)fn::log1m_exp(0.5), std::domain_error);
}

// ---------------------------------------------------------------------------
// Incomplete beta
// ---------------------------------------------------------------------------

TEST(IncBeta, EndpointValues) {
  EXPECT_DOUBLE_EQ(fn::incbeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fn::incbeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x = 0.05; x < 1.0; x += 0.05) {
    EXPECT_NEAR(fn::incbeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncBeta, PowerSpecialCase) {
  // I_x(a,1) = x^a.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    for (double x : {0.1, 0.4, 0.9}) {
      EXPECT_NEAR(fn::incbeta(a, 1.0, x), std::pow(x, a), 1e-12);
    }
  }
}

TEST(IncBeta, ComplementIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double a : {0.5, 2.0, 30.0}) {
    for (double b : {1.5, 8.0, 200.0}) {
      for (double x : {0.01, 0.3, 0.77, 0.999}) {
        EXPECT_NEAR(fn::incbeta(a, b, x), 1.0 - fn::incbeta(b, a, 1.0 - x), 1e-10);
      }
    }
  }
}

TEST(IncBeta, DomainErrors) {
  EXPECT_THROW((void)fn::incbeta(0.0, 1.0, 0.5), std::domain_error);
  EXPECT_THROW((void)fn::incbeta(1.0, 1.0, -0.1), std::domain_error);
  EXPECT_THROW((void)fn::incbeta(1.0, 1.0, 1.1), std::domain_error);
}

// ---------------------------------------------------------------------------
// Binomial / Poisson
// ---------------------------------------------------------------------------

TEST(Binomial, PmfSumsToOne) {
  for (int n : {0, 1, 7, 40}) {
    for (double p : {0.0, 0.05, 0.5, 0.93, 1.0}) {
      double acc = 0.0;
      for (int k = 0; k <= n; ++k) acc += fn::binomial_pmf(k, n, p);
      EXPECT_NEAR(acc, 1.0, 1e-12) << "n=" << n << " p=" << p;
    }
  }
}

TEST(Binomial, CdfMatchesDirectSumSmall) {
  for (int n : {5, 31, 64}) {
    for (double p : {0.01, 0.37, 0.8}) {
      double acc = 0.0;
      for (int k = 0; k <= n; ++k) {
        acc += fn::binomial_pmf(k, n, p);
        EXPECT_NEAR(fn::binomial_cdf(k, n, p), std::min(acc, 1.0), 1e-11);
      }
    }
  }
}

TEST(Binomial, CdfMatchesDirectSumLarge) {
  // n=1000 forces the incomplete-beta path; compare to direct log-space sum.
  const int n = 1000;
  for (double p : {0.001, 0.01, 0.1}) {
    for (int k : {0, 1, 5, 20, 100, 999}) {
      double acc = 0.0;
      for (int i = 0; i <= k; ++i) acc += fn::binomial_pmf(i, n, p);
      EXPECT_NEAR(fn::binomial_cdf(k, n, p), std::min(acc, 1.0), 1e-9)
          << "p=" << p << " k=" << k;
    }
  }
}

TEST(Binomial, SfComplementsCdf) {
  for (int n : {10, 2000}) {
    for (double p : {0.002, 0.4}) {
      for (int k = 0; k < n; k += n / 10 + 1) {
        EXPECT_NEAR(fn::binomial_cdf(k, n, p) + fn::binomial_sf(k, n, p), 1.0, 1e-9);
      }
    }
  }
}

TEST(Binomial, HugeNTinyPMatchesPoissonLimit) {
  // Regime of the top-t membership probabilities: N ~ 1e6, Pi ~ 1e-5.
  const std::int64_t n = 1000000;
  const double p = 1e-5;  // lambda = 10
  for (int k = 0; k <= 30; ++k) {
    EXPECT_NEAR(fn::binomial_cdf(k, n, p), fn::poisson_cdf(k, 10.0), 2e-5) << k;
  }
}

TEST(Binomial, ExtremeTailStaysInUnitInterval) {
  const double v = fn::binomial_cdf(0, 3500000, 1e-3);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1e-300);  // (1-1e-3)^(3.5e6) ~ e^-3500
}

TEST(Binomial, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(fn::binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fn::binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(fn::binomial_cdf(-1, 10, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fn::binomial_cdf(10, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(fn::binomial_sf(10, 10, 0.5), 0.0);
}

TEST(Poisson, PmfSumsToOne) {
  for (double lambda : {0.1, 1.0, 7.3, 40.0}) {
    double acc = 0.0;
    for (int k = 0; k < 400; ++k) acc += fn::poisson_pmf(k, lambda);
    EXPECT_NEAR(acc, 1.0, 1e-12);
  }
}

TEST(Poisson, CdfMonotone) {
  double prev = 0.0;
  for (int k = 0; k <= 50; ++k) {
    const double c = fn::poisson_cdf(k, 12.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Quadrature
// ---------------------------------------------------------------------------

TEST(Quadrature, GaussLegendreIntegratesPolynomialsExactly) {
  // Order-n GL is exact for degree 2n-1.
  const auto poly = [](double x) { return 5 * x * x * x - 2 * x * x + x - 7; };
  EXPECT_NEAR(fn::integrate_gl(poly, -2.0, 3.0, 2),
              5.0 / 4 * (81 - 16) - 2.0 / 3 * (27 + 8) + 0.5 * (9 - 4) - 7 * 5, 1e-10);
}

TEST(Quadrature, WeightsSumToIntervalLength) {
  for (int order : {4, 16, 32, 64, 128}) {
    const auto& rule = fn::gauss_legendre(order);
    double acc = 0.0;
    for (double w : rule.weights) acc += w;
    EXPECT_NEAR(acc, 2.0, 1e-13) << order;
  }
}

TEST(Quadrature, IntegratesGaussianTail) {
  // ∫_0^∞ e^{-x^2/2} dx = sqrt(pi/2); truncate at 40.
  const auto f = [](double x) { return std::exp(-0.5 * x * x); };
  EXPECT_NEAR(fn::integrate_adaptive(f, 0.0, 40.0, 1e-14, 1e-12),
              std::sqrt(M_PI / 2.0), 1e-10);
}

TEST(Quadrature, LogPanelsHandleWideDynamicRange) {
  // ∫_1e-9^1 1/x dx = ln(1e9).
  const auto f = [](double x) { return 1.0 / x; };
  EXPECT_NEAR(fn::integrate_gl_log(f, 1e-9, 1.0, 64, 32), std::log(1e9), 1e-8);
}

TEST(Quadrature, InvalidArguments) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW((void)fn::gauss_legendre(0), std::domain_error);
  EXPECT_THROW((void)fn::gauss_legendre(500), std::domain_error);
  EXPECT_THROW((void)fn::integrate_gl_log(f, 0.0, 1.0, 4), std::domain_error);
  EXPECT_THROW((void)fn::integrate_gl_log(f, 1.0, 1.0, 4), std::domain_error);
}

// ---------------------------------------------------------------------------
// Roots
// ---------------------------------------------------------------------------

TEST(Roots, BisectFindsCubeRoot) {
  const auto f = [](double x) { return x * x * x - 2.0; };
  const auto r = fn::bisect(f, 0.0, 2.0, 1e-13);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::cbrt(2.0), 1e-10);
}

TEST(Roots, BrentFindsTranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto r = fn::brent(f, 0.0, 1.0, 1e-14);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-12);
}

TEST(Roots, BrentBeatsOrMatchesBisectIterations) {
  const auto f = [](double x) { return std::exp(x) - 5.0; };
  const auto rb = fn::bisect(f, 0.0, 3.0, 1e-12);
  const auto rr = fn::brent(f, 0.0, 3.0, 1e-12);
  EXPECT_LE(rr.iterations, rb.iterations);
  EXPECT_NEAR(rr.x, std::log(5.0), 1e-10);
}

TEST(Roots, RejectsNonBracketingInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)fn::bisect(f, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)fn::brent(f, -1.0, 1.0), std::invalid_argument);
}

TEST(Roots, AcceptsRootAtEndpoint) {
  const auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(fn::bisect(f, 0.0, 1.0).x, 0.0);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, RunningStatsMatchesClosedForm) {
  fn::RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
  // Sample variance of 1..100 = (100^2-1)/12 * 100/99 = 841.6666...
  EXPECT_NEAR(s.variance(), 841.66666666666663, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Stats, MergeEqualsSequential) {
  auto eng = flowrank::util::make_engine(42);
  std::normal_distribution<double> dist(3.0, 2.0);
  fn::RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(eng);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(fn::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fn::quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(fn::quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(fn::quantile(v, 0.25), 2.0);
}

TEST(Stats, HillEstimatorRecoversParetoShape) {
  auto eng = flowrank::util::make_engine(7);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (double beta : {1.2, 1.5, 2.5}) {
    std::vector<double> samples(200000);
    for (auto& s : samples) {
      s = std::pow(1.0 - unif(eng), -1.0 / beta);  // Pareto(a=1, beta)
    }
    const double est = fn::hill_tail_index(samples, 5000);
    EXPECT_NEAR(est, beta, 0.1 * beta) << beta;
  }
}

TEST(Stats, HillEstimatorValidation) {
  std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW((void)fn::hill_tail_index(tiny, 5), std::invalid_argument);
  EXPECT_THROW((void)fn::hill_tail_index(tiny, 0), std::invalid_argument);
}

TEST(Stats, KendallTauPerfectAgreement) {
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(fn::kendall_tau(x, x), 1.0);
  std::vector<double> rev{6, 5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(fn::kendall_tau(x, rev), -1.0);
}

TEST(Stats, KendallTauMatchesBruteForce) {
  auto eng = flowrank::util::make_engine(11);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(50), y(50);
    for (auto& v : x) v = unif(eng);
    for (auto& v : y) v = unif(eng);
    double c = 0, d = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      for (std::size_t j = i + 1; j < x.size(); ++j) {
        const double s = (x[i] - x[j]) * (y[i] - y[j]);
        if (s > 0) ++c;
        if (s < 0) ++d;
      }
    }
    const double brute = (c - d) / (0.5 * 50 * 49);
    EXPECT_NEAR(fn::kendall_tau(x, y), brute, 1e-12);
  }
}

TEST(Stats, KendallTauRejectsBadInput) {
  std::vector<double> a{1, 2, 3}, b{1, 2};
  EXPECT_THROW((void)fn::kendall_tau(a, b), std::invalid_argument);
  std::vector<double> single{1};
  EXPECT_THROW((void)fn::kendall_tau(single, single), std::invalid_argument);
}
