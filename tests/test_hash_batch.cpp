// Tests for the SIMD batch hash kernel (flowtable::hash_batch): every
// compiled-in implementation must be bit-identical to the scalar
// FlowKeyHash it replaces, with and without salt, because the carried
// hash feeds shard selection, FlowTable probing and hash-threshold
// sampling — a single differing bit would silently fork the canonical
// results.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/flowtable/hash_batch.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/util/rng.hpp"

namespace ftab = flowrank::flowtable;
namespace fp = flowrank::packet;

namespace {

std::vector<fp::FlowKey> random_keys(std::size_t n, std::uint64_t seed) {
  auto engine = flowrank::util::make_engine(seed, 0x7E57u);
  std::uniform_int_distribution<std::uint64_t> rand64;
  std::vector<fp::FlowKey> keys(n);
  for (auto& key : keys) {
    key.hi = rand64(engine);
    key.lo = rand64(engine);
  }
  // Edge keys: all-zero (the table's empty sentinel collides here) and
  // all-ones.
  if (n >= 2) {
    keys[0] = fp::FlowKey{0, 0};
    keys[1] = fp::FlowKey{~0ULL, ~0ULL};
  }
  return keys;
}

std::vector<ftab::HashBatchImpl> available_impls() {
  std::vector<ftab::HashBatchImpl> impls;
  for (const auto impl :
       {ftab::HashBatchImpl::kScalar, ftab::HashBatchImpl::kSse2,
        ftab::HashBatchImpl::kNeon}) {
    if (ftab::hash_batch_impl_available(impl)) impls.push_back(impl);
  }
  return impls;
}

}  // namespace

TEST(HashBatch, EveryImplMatchesScalarFlowKeyHashUnsalted) {
  // Odd length so the SIMD paths exercise their scalar tail.
  const auto keys = random_keys(1001, 42);
  std::vector<std::uint64_t> expected(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    expected[i] = fp::FlowKeyHash{}(keys[i]);
  }
  for (const auto impl : available_impls()) {
    std::vector<std::uint64_t> out(keys.size());
    ftab::hash_batch_with(impl, keys, /*salt=*/0, out);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(out[i], expected[i])
          << "impl=" << ftab::hash_batch_impl_name(impl) << " key " << i;
    }
  }
}

TEST(HashBatch, SaltedBatchMatchesFlowSamplerDecisions) {
  // FlowSampler's per-key decision is the same kernel with the salt
  // folded into the first mixing step; the batch path must reproduce its
  // selects() bit for bit at every threshold.
  const auto keys = random_keys(517, 7);
  for (const double q : {0.1, 0.5, 0.9}) {
    flowrank::sampler::FlowSampler sampler(q, fp::FlowDefinition::kFiveTuple,
                                           /*seed=*/123);
    // Reproduce the sampler's internal salt derivation.
    const std::uint64_t salt = flowrank::util::derive_seed(123, 0xF10Du);
    const auto threshold =
        q >= 1.0 ? ~0ULL : static_cast<std::uint64_t>(q * 18446744073709551615.0);
    for (const auto impl : available_impls()) {
      std::vector<std::uint64_t> out(keys.size());
      ftab::hash_batch_with(impl, keys, salt, out);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(out[i] <= threshold, sampler.selects(keys[i]))
            << "impl=" << ftab::hash_batch_impl_name(impl) << " q=" << q
            << " key " << i;
      }
    }
  }
}

TEST(HashBatch, TableReadyRemapsOnlyTheEmptySentinel) {
  static_assert(ftab::table_ready_hash(0) == 0x9e3779b97f4a7c15ULL);
  static_assert(ftab::table_ready_hash(1) == 1);
  static_assert(ftab::table_ready_hash(~0ULL) == ~0ULL);

  const auto keys = random_keys(256, 9);
  std::vector<std::uint64_t> raw(keys.size()), ready(keys.size());
  ftab::hash_batch(keys, 0, raw);
  ftab::hash_batch_table_ready(keys, ready);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ready[i], ftab::table_ready_hash(raw[i])) << "key " << i;
    EXPECT_NE(ready[i], 0u);  // never the kEmptyHash sentinel
  }
}

TEST(HashBatch, RuntimeDispatchPicksAnAvailableImpl) {
  const auto active = ftab::hash_batch_impl();
  EXPECT_TRUE(ftab::hash_batch_impl_available(active));
  EXPECT_FALSE(std::string(ftab::hash_batch_impl_name(active)).empty());
  // Scalar is always compiled in and always requestable.
  EXPECT_TRUE(ftab::hash_batch_impl_available(ftab::HashBatchImpl::kScalar));
  // Requesting an impl the host cannot run fails loudly, not silently.
  for (const auto impl :
       {ftab::HashBatchImpl::kSse2, ftab::HashBatchImpl::kNeon}) {
    if (ftab::hash_batch_impl_available(impl)) continue;
    std::vector<fp::FlowKey> keys(4);
    std::vector<std::uint64_t> out(4);
    EXPECT_THROW(ftab::hash_batch_with(impl, keys, 0, out),
                 std::invalid_argument);
  }
}

TEST(HashBatch, EmptyAndSingleElementSpans) {
  std::vector<fp::FlowKey> none;
  std::vector<std::uint64_t> out;
  ftab::hash_batch(none, 0, out);  // must not touch memory
  const auto keys = random_keys(1, 3);
  std::vector<std::uint64_t> one(1);
  ftab::hash_batch(keys, 0, one);
  EXPECT_EQ(one[0], fp::FlowKeyHash{}(keys[0]));
}
