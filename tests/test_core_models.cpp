// Tests for the general ranking model (Sec. 5), detection model (Sec. 7),
// exact discrete model, Monte-Carlo validator and planner.
//
// The decisive checks are model-vs-Monte-Carlo: the quadrature models must
// agree with brute-force simulation of the very process the paper
// describes, across sampling rates, population sizes and distributions.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/discrete_model.hpp"
#include "flowrank/core/mc_model.hpp"
#include "flowrank/core/misranking.hpp"
#include "flowrank/core/ranking_model.hpp"
#include "flowrank/core/sampling_planner.hpp"
#include "flowrank/dist/exponential.hpp"
#include "flowrank/dist/pareto.hpp"

namespace fc = flowrank::core;
namespace fd = flowrank::dist;

namespace {

fc::RankingModelConfig make_config(std::int64_t n, std::int64_t t, double p,
                                   double beta = 1.5, double mean = 9.6) {
  fc::RankingModelConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.p = p;
  cfg.size_dist = std::make_shared<fd::Pareto>(fd::Pareto::from_mean(mean, beta));
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ranking model vs Monte Carlo
// ---------------------------------------------------------------------------

struct McAgreementCase {
  std::int64_t n;
  std::int64_t t;
  double p;
  double beta;
};

class RankingVsMc : public ::testing::TestWithParam<McAgreementCase> {};

TEST_P(RankingVsMc, ModelWithinMcConfidenceBand) {
  const auto param = GetParam();
  auto cfg = make_config(param.n, param.t, param.p, param.beta);
  const auto model = fc::evaluate_ranking_model(cfg);
  const auto mc = fc::run_mc_model(cfg, 60, /*seed=*/1234);
  const double mc_mean = mc.ranking_metric.mean();
  // For infinite-variance tails (beta <= 1.3) at small sampling rates the
  // paper's Gaussian pairwise model systematically overestimates the
  // metric (the summary_claims ablation decomposes this bias; the hybrid
  // pairwise model corrects it). Cover that documented model bias
  // explicitly instead of relying on the Monte-Carlo stderr happening to
  // be large for the particular seed stream.
  const double model_bias_slack =
      (param.beta <= 1.3 && param.p <= 0.05) ? 0.35 * model.metric : 0.0;
  const double band =
      5.0 * mc.ranking_stderr() + 0.12 * mc_mean + 0.05 + model_bias_slack;
  EXPECT_NEAR(model.metric, mc_mean, band)
      << "n=" << param.n << " t=" << param.t << " p=" << param.p
      << " beta=" << param.beta;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankingVsMc,
    ::testing::Values(McAgreementCase{2000, 1, 0.10, 1.5},
                      McAgreementCase{2000, 5, 0.10, 1.5},
                      McAgreementCase{2000, 10, 0.30, 1.5},
                      McAgreementCase{5000, 5, 0.05, 1.5},
                      McAgreementCase{5000, 10, 0.10, 1.2},
                      McAgreementCase{5000, 2, 0.20, 2.5},
                      McAgreementCase{10000, 10, 0.10, 1.5},
                      McAgreementCase{10000, 5, 0.02, 1.2}));

class DetectionVsMc : public ::testing::TestWithParam<McAgreementCase> {};

TEST_P(DetectionVsMc, ModelWithinMcConfidenceBand) {
  const auto param = GetParam();
  auto cfg = make_config(param.n, param.t, param.p, param.beta);
  const auto model = fc::evaluate_detection_model(cfg);
  const auto mc = fc::run_mc_model(cfg, 60, /*seed=*/77);
  const double mc_mean = mc.detection_metric.mean();
  const double band = 5.0 * mc.detection_stderr() + 0.12 * mc_mean + 0.05;
  EXPECT_NEAR(model.metric, mc_mean, band)
      << "n=" << param.n << " t=" << param.t << " p=" << param.p
      << " beta=" << param.beta;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectionVsMc,
    ::testing::Values(McAgreementCase{2000, 5, 0.10, 1.5},
                      McAgreementCase{2000, 10, 0.05, 1.5},
                      McAgreementCase{5000, 10, 0.10, 1.2},
                      McAgreementCase{5000, 5, 0.02, 1.5},
                      McAgreementCase{10000, 10, 0.05, 1.5}));

// ---------------------------------------------------------------------------
// Structural properties of the models (the paper's qualitative findings)
// ---------------------------------------------------------------------------

TEST(RankingModel, MetricDecreasesWithSamplingRate) {
  double prev = std::numeric_limits<double>::infinity();
  for (double p : {0.001, 0.01, 0.1, 0.5}) {
    const double m = fc::evaluate_ranking_model(make_config(100000, 10, p)).metric;
    EXPECT_LT(m, prev) << p;
    prev = m;
  }
}

TEST(RankingModel, MetricIncreasesWithT) {
  // Fig. 4: more top flows are harder to rank.
  double prev = 0.0;
  for (std::int64_t t : {1, 2, 5, 10, 25}) {
    const double m = fc::evaluate_ranking_model(make_config(100000, t, 0.01)).metric;
    EXPECT_GT(m, prev) << t;
    prev = m;
  }
}

TEST(RankingModel, HeavierTailRanksBetter) {
  // Fig. 6: smaller beta (heavier tail) => better ranking.
  const double heavy =
      fc::evaluate_ranking_model(make_config(100000, 10, 0.05, 1.2)).metric;
  const double light =
      fc::evaluate_ranking_model(make_config(100000, 10, 0.05, 2.5)).metric;
  EXPECT_LT(heavy, light);
}

TEST(RankingModel, MoreFlowsRankBetter) {
  // Fig. 8: larger N (with Pareto sizes) => better ranking.
  const double small_n =
      fc::evaluate_ranking_model(make_config(140000, 10, 0.01)).metric;
  const double large_n =
      fc::evaluate_ranking_model(make_config(3500000, 10, 0.01)).metric;
  EXPECT_LT(large_n, small_n);
  // Sec. 6.3 claims N=3.5M is "very accurate even at 0.1%". Neither the
  // model nor Monte Carlo reproduces metric < 1 there (see EXPERIMENTS.md),
  // but the order-of-magnitude improvement over N=140K does hold.
  const double huge =
      fc::evaluate_ranking_model(make_config(3500000, 10, 0.001)).metric;
  const double modest =
      fc::evaluate_ranking_model(make_config(140000, 10, 0.001)).metric;
  EXPECT_LT(huge * 10.0, modest);
}

TEST(RankingModel, HybridPairwiseTamesGaussianTailBias) {
  // At Internet scale and low p the Gaussian Eq. (2) overstates swaps with
  // the ~N tiny flows by more than an order of magnitude; the hybrid
  // pairwise model removes that term (library extension, see DESIGN.md).
  auto cfg = make_config(3500000, 10, 0.001);
  const double gaussian = fc::evaluate_ranking_model(cfg).metric;
  cfg.pairwise = fc::PairwiseModel::kHybrid;
  const double hybrid = fc::evaluate_ranking_model(cfg).metric;
  EXPECT_LT(hybrid * 5.0, gaussian);
  // Unordered pair counting removes Eq. (3)'s top-top double count on top.
  cfg.counting = fc::PairCounting::kUnordered;
  const double unordered = fc::evaluate_ranking_model(cfg).metric;
  EXPECT_LT(unordered, hybrid);
}

TEST(RankingModel, HybridEqualsGaussianWhenSamplingIsHealthy) {
  // With p*S comfortably large for all relevant flows, the two pairwise
  // models coincide.
  auto cfg = make_config(50000, 5, 0.3);
  const double gaussian = fc::evaluate_ranking_model(cfg).metric;
  cfg.pairwise = fc::PairwiseModel::kHybrid;
  const double hybrid = fc::evaluate_ranking_model(cfg).metric;
  EXPECT_NEAR(hybrid, gaussian, 0.05 * std::max(gaussian, 1e-9));
}

TEST(Misranking, HybridMatchesExactPairwise) {
  // The hybrid two-flow probability must track the exact Eq. (1) across
  // regimes, including where the Gaussian fails (pS << 1).
  for (double p : {0.001, 0.01, 0.1}) {
    for (std::int64_t s1 : {3, 40, 400, 5000}) {
      for (std::int64_t s2 : {10, 300, 8000}) {
        const double exact = fc::misranking_exact(s1, s2, p);
        const double hybrid = fc::misranking_hybrid(
            static_cast<double>(s1), static_cast<double>(s2), p);
        EXPECT_NEAR(hybrid, exact, 0.02 + 0.05 * exact)
            << "p=" << p << " s1=" << s1 << " s2=" << s2;
      }
    }
  }
}

TEST(RankingModel, PaperScaleFiveTupleNumbers) {
  // Fig. 4 anchor points (N=0.7M, beta=1.5): at p=0.1% ranking is
  // impossible (metric >> 1); at p=50% the top flow is ranked correctly.
  EXPECT_GT(fc::evaluate_ranking_model(make_config(700000, 10, 0.001)).metric, 100.0);
  EXPECT_LT(fc::evaluate_ranking_model(make_config(700000, 1, 0.5)).metric, 1.0);
  // t=5 at 1% is around the acceptability boundary (order of magnitude).
  const double m = fc::evaluate_ranking_model(make_config(700000, 5, 0.01)).metric;
  EXPECT_GT(m, 0.01);
  EXPECT_LT(m, 100.0);
}

TEST(DetectionModel, EasierThanRanking) {
  // Sec. 7: detection needs roughly an order of magnitude less sampling.
  for (double p : {0.01, 0.05, 0.1}) {
    const auto cfg = make_config(100000, 10, p);
    const double rank = fc::evaluate_ranking_model(cfg).metric;
    const double detect = fc::evaluate_detection_model(cfg).metric;
    EXPECT_LT(detect, rank) << p;
  }
}

TEST(DetectionModel, EquivalentToRankingForTopOne) {
  // Sec. 7.1: for t = 1 the two problems coincide.
  for (double p : {0.01, 0.1}) {
    const auto cfg = make_config(50000, 1, p);
    const double rank = fc::evaluate_ranking_model(cfg).metric;
    const double detect = fc::evaluate_detection_model(cfg).metric;
    EXPECT_NEAR(detect, rank, 0.02 * std::max(rank, 1e-6)) << p;
  }
}

TEST(DetectionModel, MetricDecreasesWithSamplingRate) {
  double prev = std::numeric_limits<double>::infinity();
  for (double p : {0.001, 0.01, 0.1}) {
    const double m = fc::evaluate_detection_model(make_config(100000, 10, p)).metric;
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(Models, InvalidConfigurations) {
  auto cfg = make_config(1000, 10, 0.1);
  cfg.t = 0;
  EXPECT_THROW((void)fc::evaluate_ranking_model(cfg), std::invalid_argument);
  cfg.t = 2000;
  EXPECT_THROW((void)fc::evaluate_ranking_model(cfg), std::invalid_argument);
  cfg = make_config(1000, 10, 0.0);
  EXPECT_THROW((void)fc::evaluate_ranking_model(cfg), std::invalid_argument);
  cfg = make_config(1000, 10, 0.1);
  cfg.size_dist = nullptr;
  EXPECT_THROW((void)fc::evaluate_ranking_model(cfg), std::invalid_argument);
  EXPECT_THROW((void)fc::evaluate_detection_model(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Discrete exact model
// ---------------------------------------------------------------------------

TEST(DiscreteModel, AgreesWithContinuousModelOnSmallScale) {
  // A light enough tail that max_size=2000 captures essentially all mass.
  fc::DiscreteModelConfig dcfg;
  dcfg.n = 2000;
  dcfg.t = 5;
  dcfg.p = 0.2;
  dcfg.max_size = 3000;
  dcfg.tail_tolerance = 1e-4;
  dcfg.size_pmf = std::make_shared<fd::Discretized>(
      std::make_unique<fd::Pareto>(fd::Pareto::from_mean(9.6, 2.5)));
  const auto exact = fc::evaluate_discrete_ranking_model(dcfg);

  auto ccfg = make_config(2000, 5, 0.2, 2.5);
  const auto cont = fc::evaluate_ranking_model(ccfg);
  // Two independent numerical paths (discrete+exact-Pm vs continuous+
  // Gaussian-Pm); agreement within ~15% validates both.
  EXPECT_NEAR(exact.metric, cont.metric, 0.2 * std::max(exact.metric, 0.05));
}

TEST(DiscreteModel, GaussianPairwiseToggleIsolatesApproximationError) {
  fc::DiscreteModelConfig dcfg;
  dcfg.n = 1000;
  dcfg.t = 3;
  dcfg.p = 0.3;
  dcfg.max_size = 2500;
  dcfg.tail_tolerance = 1e-4;
  dcfg.size_pmf = std::make_shared<fd::Discretized>(
      std::make_unique<fd::Pareto>(fd::Pareto::from_mean(9.6, 2.5)));
  const auto with_exact_pm = fc::evaluate_discrete_ranking_model(dcfg);
  dcfg.gaussian_pairwise = true;
  const auto with_gaussian_pm = fc::evaluate_discrete_ranking_model(dcfg);
  // Same distribution machinery, only Pm differs; should be close at p=0.3.
  EXPECT_NEAR(with_exact_pm.metric, with_gaussian_pm.metric,
              0.35 * std::max(with_exact_pm.metric, 0.02));
}

TEST(DiscreteModel, AgreesWithMonteCarlo) {
  fc::DiscreteModelConfig dcfg;
  dcfg.n = 1000;
  dcfg.t = 5;
  dcfg.p = 0.15;
  dcfg.max_size = 3000;
  dcfg.tail_tolerance = 2e-4;
  dcfg.size_pmf = std::make_shared<fd::Discretized>(
      std::make_unique<fd::Pareto>(fd::Pareto::from_mean(9.6, 2.5)));
  const auto exact = fc::evaluate_discrete_ranking_model(dcfg);

  auto mc_cfg = make_config(1000, 5, 0.15, 2.5);
  const auto mc = fc::run_mc_model(mc_cfg, 80, 4321);
  EXPECT_NEAR(exact.metric, mc.ranking_metric.mean(),
              5.0 * mc.ranking_stderr() + 0.12 * mc.ranking_metric.mean() + 0.05);
}

TEST(DiscreteModel, RejectsHeavyTailBeyondSupportCap) {
  fc::DiscreteModelConfig dcfg;
  dcfg.n = 1000;
  dcfg.t = 5;
  dcfg.p = 0.1;
  dcfg.max_size = 500;  // Pareto(beta=1.5) has far too much mass above 500
  dcfg.size_pmf = std::make_shared<fd::Discretized>(
      std::make_unique<fd::Pareto>(fd::Pareto::from_mean(9.6, 1.5)));
  EXPECT_THROW((void)fc::evaluate_discrete_ranking_model(dcfg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

TEST(Planner, FindsRateMeetingTarget) {
  auto cfg = make_config(100000, 10, /*p=*/0.0);
  const auto plan = fc::plan_sampling_rate(cfg, fc::PlannerGoal::kRankTopT, 1.0);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.metric, 1.0);
  // Just below the planned rate the target must be missed.
  cfg.p = plan.sampling_rate * 0.8;
  EXPECT_GT(fc::evaluate_ranking_model(cfg).metric, 1.0);
}

TEST(Planner, DetectionNeedsLowerRateThanRanking) {
  auto cfg = make_config(100000, 10, 0.0);
  const auto rank_plan = fc::plan_sampling_rate(cfg, fc::PlannerGoal::kRankTopT, 1.0);
  const auto det_plan = fc::plan_sampling_rate(cfg, fc::PlannerGoal::kDetectTopT, 1.0);
  ASSERT_TRUE(rank_plan.feasible);
  ASSERT_TRUE(det_plan.feasible);
  EXPECT_LT(det_plan.sampling_rate, rank_plan.sampling_rate);
}

TEST(Planner, ReportsInfeasibleTargets) {
  auto cfg = make_config(5000, 25, 0.0);
  // Demand an absurd accuracy at a capped maximum rate.
  const auto plan =
      fc::plan_sampling_rate(cfg, fc::PlannerGoal::kRankTopT, 1e-9, 1e-4, 0.02);
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, InvalidArguments) {
  auto cfg = make_config(1000, 5, 0.0);
  EXPECT_THROW((void)fc::plan_sampling_rate(cfg, fc::PlannerGoal::kRankTopT, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fc::plan_sampling_rate(cfg, fc::PlannerGoal::kRankTopT, 1.0, 0.5, 0.1),
      std::invalid_argument);
}
