// Tests for the multi-vantage aggregation layer: FlowSummary wire
// round-trips and rejection semantics (including the exhaustive
// single-bit-flip sweep), merge conservation across insertion orders,
// the mergeable Space-Saving union error bound, Aggregator failure
// policy (deadlines, staleness, duplicates, quarantine/readmission),
// and the in-process fleet driver's contracts: single-agent runs
// bit-identical to the direct pipeline, disjoint-split full-rate runs
// exactly reproducing the combined-trace ranking, and fault-injected
// runs whose aggregator counters match the injected schedule.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/agg/aggregator.hpp"
#include "flowrank/agg/fleet_run.hpp"
#include "flowrank/agg/flow_summary.hpp"
#include "flowrank/agg/summary_channel.hpp"
#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/bytes.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/rng.hpp"

namespace fa = flowrank::agg;
namespace fe = flowrank::estimators;
namespace ffl = flowrank::flowtable;
namespace fp = flowrank::packet;
namespace fs = flowrank::sampler;
namespace ft = flowrank::trace;
namespace fu = flowrank::util;

namespace {

fp::FlowKey key_of(std::uint64_t hi, std::uint64_t lo) {
  return fp::FlowKey{hi, lo};
}

ffl::FlowCounter counter_of(std::uint64_t hi, std::uint64_t lo,
                            std::uint64_t packets, std::uint64_t bytes,
                            std::int64_t first_ns, std::int64_t last_ns) {
  ffl::FlowCounter c;
  c.key = key_of(hi, lo);
  c.packets = packets;
  c.bytes = bytes;
  c.first_ns = first_ns;
  c.last_ns = last_ns;
  return c;
}

/// A representative table summary with several entries, TCP-seq state,
/// and non-default counters.
fa::FlowSummary sample_table_summary() {
  fa::FlowSummary summary;
  summary.agent_id = 3;
  summary.epoch = 17;
  summary.kind = fa::SummaryKind::kFlowTable;
  summary.effective_rate = 0.25;
  summary.packets_offered = 4000;
  summary.packets_sampled = 1010;
  summary.shed_packets = 5;
  summary.fault_records = 2;
  for (std::uint64_t i = 0; i < 6; ++i) {
    fa::SummaryEntry entry;
    entry.key = key_of(i, i * 31 + 1);
    entry.packets = 100 + i;
    entry.bytes = 50000 + i;
    entry.first_ns = static_cast<std::int64_t>(1000 * i);
    entry.last_ns = static_cast<std::int64_t>(1000 * i + 999);
    entry.min_tcp_seq = static_cast<std::uint32_t>(10 * i);
    entry.max_tcp_seq = static_cast<std::uint32_t>(10 * i + 5);
    entry.has_tcp_seq = (i % 2) == 0;
    summary.entries.push_back(entry);
  }
  return summary;
}

fa::FlowSummary sample_sketch_summary() {
  fa::FlowSummary summary;
  summary.agent_id = 1;
  summary.epoch = 4;
  summary.kind = fa::SummaryKind::kSpaceSaving;
  summary.effective_rate = 0.1;
  summary.packets_offered = 900;
  summary.packets_sampled = 90;
  summary.sketch_capacity = 8;
  for (std::uint64_t i = 0; i < 8; ++i) {
    fa::SummaryEntry entry;
    entry.key = key_of(7, i);
    entry.packets = 40 - i;
    entry.error = i / 2;
    summary.entries.push_back(entry);
  }
  return summary;
}

/// Rewrites the trailing FNV checksum after a test tampers with the body
/// (so the tampered field itself, not the checksum, trips the parser).
void refresh_checksum(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 8u);
  const std::uint64_t sum = fu::fnv1a64(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 8));
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] =
        static_cast<std::uint8_t>((sum >> (8 * i)) & 0xFF);
  }
}

void expect_corrupt(const std::vector<std::uint8_t>& bytes,
                    const std::string& what) {
  try {
    (void)fa::parse_summary(bytes);
    FAIL() << "expected kCorruptSummary for " << what;
  } catch (const flowrank::Error& e) {
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kCorruptSummary) << what;
  }
}

/// Direct single-pipeline replay: same stream, same sampler seed, one
/// flow table per window. The reference for the fleet parity tests.
std::map<std::uint64_t, std::vector<ffl::FlowCounter>> replay_direct(
    const ft::FlowTrace& trace, double rate, std::uint64_t seed,
    double window_s, fp::FlowDefinition definition) {
  const std::int64_t window_ns = ft::bin_length_ns(window_s);
  ft::PacketStream stream(trace);
  fs::BernoulliSampler sampler(rate, seed);
  std::map<std::uint64_t, ffl::FlowTable> tables;
  std::vector<fp::PacketRecord> batch;
  std::vector<fp::PacketRecord> selected;
  while (stream.next_batch(batch, 4096) > 0) {
    sampler.select_into(batch, selected);
    for (const fp::PacketRecord& pkt : selected) {
      const std::uint64_t w =
          static_cast<std::uint64_t>(pkt.timestamp_ns / window_ns);
      auto it = tables.find(w);
      if (it == tables.end()) {
        ffl::FlowTable::Options options;
        options.definition = definition;
        it = tables.emplace(w, ffl::FlowTable(options)).first;
      }
      it->second.add(pkt);
    }
  }
  std::map<std::uint64_t, std::vector<ffl::FlowCounter>> out;
  for (const auto& [w, table] : tables) out.emplace(w, table.all());
  return out;
}

ft::FlowTrace small_trace(double duration_s, double flow_rate,
                          std::uint64_t seed) {
  auto cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, seed);
  cfg.duration_s = duration_s;
  cfg.flow_rate_per_s = flow_rate;
  return ft::generate_flow_trace(cfg);
}

/// Serializes every window row to its cell text for bit-identity
/// comparisons across configurations.
std::vector<std::vector<std::string>> row_texts(
    const std::vector<fa::MergedWindow>& windows) {
  std::vector<std::vector<std::string>> out;
  for (const fa::MergedWindow& window : windows) {
    std::vector<std::string> cells;
    for (const auto& value : fa::window_row(window)) cells.push_back(value.text());
    out.push_back(std::move(cells));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlowSummary wire format
// ---------------------------------------------------------------------------

TEST(FlowSummaryWire, RoundTripsBothKinds) {
  for (const fa::FlowSummary& summary :
       {sample_table_summary(), sample_sketch_summary()}) {
    const std::vector<std::uint8_t> bytes = fa::serialize(summary);
    const fa::FlowSummary parsed = fa::parse_summary(bytes);
    EXPECT_EQ(parsed, summary);
    // Re-serializing the parse reproduces the exact bytes (canonical form).
    EXPECT_EQ(fa::serialize(parsed), bytes);
  }

  // An empty summary (agent saw nothing this window) round-trips too.
  fa::FlowSummary empty;
  empty.agent_id = 2;
  empty.epoch = 9;
  EXPECT_EQ(fa::parse_summary(fa::serialize(empty)), empty);
}

TEST(FlowSummaryWire, SerializationIsCanonicalAcrossInsertionOrders) {
  const auto c1 = counter_of(4, 9, 10, 5000, 100, 200);
  const auto c2 = counter_of(1, 2, 20, 9000, 50, 400);
  const auto c3 = counter_of(4, 1, 5, 2500, 10, 90);

  ffl::FlowTable::Options options;
  ffl::FlowTable forward(options);
  ffl::FlowTable backward(options);
  for (const auto& c : {c1, c2, c3}) forward.insert_counter(c);
  for (const auto& c : {c3, c2, c1}) backward.insert_counter(c);

  const auto a = fa::serialize(fa::summarize_table(forward, 0, 1, 1.0));
  const auto b = fa::serialize(fa::summarize_table(backward, 0, 1, 1.0));
  EXPECT_EQ(a, b);
}

TEST(FlowSummaryWire, RejectsFramingViolations) {
  const std::vector<std::uint8_t> good = fa::serialize(sample_table_summary());

  expect_corrupt({}, "empty buffer");
  expect_corrupt(std::vector<std::uint8_t>(good.begin(), good.begin() + 20),
                 "truncated header");

  {
    auto bad = good;
    bad[0] = 'X';
    refresh_checksum(bad);
    expect_corrupt(bad, "bad magic");
  }
  {
    auto bad = good;
    bad.pop_back();
    expect_corrupt(bad, "truncated by one byte");
  }
  {
    auto bad = good;
    bad.push_back(0);
    expect_corrupt(bad, "trailing garbage byte");
  }
  {
    auto bad = good;
    bad[8] = 2;  // version
    refresh_checksum(bad);
    expect_corrupt(bad, "unsupported version");
  }
  {
    auto bad = good;
    bad[10] = 7;  // kind
    refresh_checksum(bad);
    expect_corrupt(bad, "unknown kind");
  }
  {
    auto bad = good;
    bad[76] = 1;  // reserved
    refresh_checksum(bad);
    expect_corrupt(bad, "nonzero reserved field");
  }
  {
    auto bad = good;
    bad[72] = static_cast<std::uint8_t>(bad[72] + 1);  // entry_count
    refresh_checksum(bad);
    expect_corrupt(bad, "entry count / size mismatch");
  }
  {
    // has_tcp_seq is the last byte of the first 57-byte entry.
    auto bad = good;
    bad[80 + 56] = 2;
    refresh_checksum(bad);
    expect_corrupt(bad, "has_tcp_seq out of {0,1}");
  }

  // Out-of-range sampling rates cannot even be serialized locally...
  for (const double rate : {0.0, -0.5, 1.5,
                            std::numeric_limits<double>::quiet_NaN()}) {
    fa::FlowSummary summary = sample_table_summary();
    summary.effective_rate = rate;
    EXPECT_THROW((void)fa::serialize(summary), std::invalid_argument);
    // ...and a message whose rate field (offset 24) was rewritten in
    // flight is rejected at parse time.
    auto bad = good;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(rate);
    for (std::size_t i = 0; i < 8; ++i) {
      bad[24 + i] = static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF);
    }
    refresh_checksum(bad);
    expect_corrupt(bad, "out-of-range sampling rate");
  }
}

// Satellite (c): the FNV-1a per-byte step is a bijection of the hash
// state, so EVERY single-bit flip anywhere in the message — header,
// entries, or the checksum itself — must be rejected. A corrupted
// summary is never parsed into a plausible-but-wrong one.
TEST(FlowSummaryWire, EverySingleBitFlipIsDetected) {
  for (const fa::FlowSummary& summary :
       {sample_table_summary(), sample_sketch_summary()}) {
    std::vector<std::uint8_t> bytes = fa::serialize(summary);
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        try {
          (void)fa::parse_summary(bytes);
          FAIL() << "bit flip at byte " << byte << " bit " << bit
                 << " parsed successfully";
        } catch (const flowrank::Error& e) {
          ASSERT_EQ(e.category(), flowrank::ErrorCategory::kCorruptSummary)
              << "byte " << byte << " bit " << bit;
        }
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      }
    }
    // Restored buffer still parses: the sweep proved rejection, not decay.
    EXPECT_EQ(fa::parse_summary(bytes), summary);
  }
}

TEST(FlowSummaryWire, EveryTruncationIsDetected) {
  const std::vector<std::uint8_t> bytes = fa::serialize(sample_table_summary());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    expect_corrupt(std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len),
                   "truncation to " + std::to_string(len) + " bytes");
  }
}

TEST(FlowSummaryWire, InvertedViewScalesByTheSummaryRate) {
  const fa::FlowSummary table = sample_table_summary();  // rate 0.25
  const fe::MergedSketch inverted = fa::inverted_view(table);
  ASSERT_EQ(inverted.flows.size(), table.entries.size());
  EXPECT_DOUBLE_EQ(inverted.absent_bound, 0.0);
  for (const fe::TrackedFlow& flow : inverted.flows) {
    const auto it = std::find_if(
        table.entries.begin(), table.entries.end(),
        [&](const fa::SummaryEntry& e) { return e.key == flow.key; });
    ASSERT_NE(it, table.entries.end());
    EXPECT_EQ(flow.estimated_packets,
              static_cast<double>(it->packets) / table.effective_rate);
    EXPECT_EQ(flow.error_bound, 0.0);
  }
  // Sorted estimate-descending with key tie-breaks (mergeable view order).
  for (std::size_t i = 1; i < inverted.flows.size(); ++i) {
    const auto& prev = inverted.flows[i - 1];
    const auto& cur = inverted.flows[i];
    EXPECT_TRUE(prev.estimated_packets > cur.estimated_packets ||
                (prev.estimated_packets == cur.estimated_packets &&
                 prev.key < cur.key));
  }

  // A full sketch carries its min-estimate absent bound, rate-inverted.
  const fa::FlowSummary sketch = sample_sketch_summary();  // 8 entries, cap 8
  const fe::MergedSketch sk = fa::inverted_view(sketch);
  double min_est = std::numeric_limits<double>::infinity();
  std::uint64_t min_packets = std::numeric_limits<std::uint64_t>::max();
  for (const auto& entry : sketch.entries) {
    min_packets = std::min(min_packets, entry.packets);
  }
  for (const auto& flow : sk.flows) {
    min_est = std::min(min_est, flow.estimated_packets);
  }
  EXPECT_EQ(sk.absent_bound,
            static_cast<double>(min_packets) / sketch.effective_rate);
  EXPECT_EQ(sk.absent_bound, min_est);
}

TEST(FlowSummaryWire, ApplyToTableReconstructsAndRejectsSketches) {
  const fa::FlowSummary summary = sample_table_summary();
  ffl::FlowTable::Options options;
  ffl::FlowTable table(options);
  fa::apply_to_table(summary, table);
  fa::FlowSummary rebuilt = fa::summarize_table(
      table, summary.agent_id, summary.epoch, summary.effective_rate);
  rebuilt.packets_offered = summary.packets_offered;
  rebuilt.packets_sampled = summary.packets_sampled;
  rebuilt.shed_packets = summary.shed_packets;
  rebuilt.fault_records = summary.fault_records;
  EXPECT_EQ(rebuilt, summary);

  ffl::FlowTable other(options);
  EXPECT_THROW(fa::apply_to_table(sample_sketch_summary(), other),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Satellite (a): merge conservation across merge orders
// ---------------------------------------------------------------------------

TEST(MergeFrom, OverlappingKeysConserveAcrossAllMergeOrders) {
  // Three tables with overlapping keys, including a legitimate
  // zero-packet counter (a flow observed only through control state).
  std::vector<std::vector<ffl::FlowCounter>> tables_flows = {
      {counter_of(1, 1, 10, 5000, 100, 900),
       counter_of(2, 2, 0, 0, 400, 400),  // zero-packet entry
       counter_of(3, 3, 7, 3500, 50, 60)},
      {counter_of(1, 1, 4, 2000, 30, 1200),
       counter_of(2, 2, 5, 2500, 200, 600)},
      {counter_of(2, 2, 3, 1500, 700, 800),
       counter_of(3, 3, 0, 0, 10, 10),  // zero-packet overlap
       counter_of(4, 4, 1, 500, 999, 999)},
  };

  // Reference per-key totals, computed arithmetically.
  std::map<fp::FlowKey, ffl::FlowCounter> expected;
  for (const auto& flows : tables_flows) {
    for (const auto& c : flows) {
      auto [it, fresh] = expected.emplace(c.key, c);
      if (!fresh) ffl::merge_counter(it->second, c);
    }
  }

  std::vector<std::size_t> order = {0, 1, 2};
  do {
    ffl::FlowTable::Options options;
    ffl::FlowTable merged(options);
    for (const std::size_t i : order) {
      ffl::FlowTable part(options);
      for (const auto& c : tables_flows[i]) part.insert_counter(c);
      merged.merge_from(part);
    }
    std::map<fp::FlowKey, ffl::FlowCounter> got;
    merged.for_each_all([&](const ffl::FlowCounter& c) {
      auto [it, fresh] = got.emplace(c.key, c);
      if (!fresh) ffl::merge_counter(it->second, c);
    });
    ASSERT_EQ(got.size(), expected.size());
    for (const auto& [key, want] : expected) {
      const auto it = got.find(key);
      ASSERT_NE(it, got.end());
      EXPECT_EQ(it->second.packets, want.packets);
      EXPECT_EQ(it->second.bytes, want.bytes);
      EXPECT_EQ(it->second.first_ns, want.first_ns);
      EXPECT_EQ(it->second.last_ns, want.last_ns);
      EXPECT_EQ(it->second.has_tcp_seq, want.has_tcp_seq);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

// ---------------------------------------------------------------------------
// Satellite (c): Space-Saving union error-bound property
// ---------------------------------------------------------------------------

TEST(SpaceSavingUnion, MergedEstimatesBracketTruthWithinSummedBounds) {
  for (const std::uint64_t seed : {11ull, 29ull, 47ull}) {
    for (const std::size_t capacity : {8ul, 16ul, 64ul}) {
      // Three skewed key streams (min of two draws concentrates mass).
      constexpr std::size_t kSketches = 3;
      constexpr std::size_t kPacketsPerStream = 2000;
      std::map<fp::FlowKey, std::uint64_t> truth;
      std::vector<fa::FlowSummary> summaries;
      for (std::size_t s = 0; s < kSketches; ++s) {
        fu::Engine engine = fu::make_engine(seed, s);
        fe::SpaceSavingTracker tracker(capacity);
        for (std::size_t i = 0; i < kPacketsPerStream; ++i) {
          const std::uint64_t id =
              std::min(engine() % 50, engine() % 50);
          const fp::FlowKey key = key_of(0, id);
          tracker.offer(key);
          ++truth[key];
        }
        summaries.push_back(fa::summarize_sketch(
            tracker, static_cast<std::uint32_t>(s), 0, 1.0));
      }

      // Per-key sum of the per-summary bounds (tracked error, or the
      // sketch's absent bound when the key is not tracked).
      const auto summed_bound = [&](const fp::FlowKey& key) {
        double bound = 0.0;
        for (const fa::FlowSummary& summary : summaries) {
          const fe::MergedSketch view = fa::inverted_view(summary);
          const auto it = std::find_if(
              view.flows.begin(), view.flows.end(),
              [&](const fe::TrackedFlow& f) { return f.key == key; });
          bound += it != view.flows.end() ? it->error_bound : view.absent_bound;
        }
        return bound;
      };

      fe::MergedSketch merged;
      for (const fa::FlowSummary& summary : summaries) {
        merged = fe::space_saving_union(merged.view(),
                                        fa::inverted_view(summary).view(), 0);
      }

      for (const fe::TrackedFlow& flow : merged.flows) {
        const auto it = truth.find(flow.key);
        const double true_count =
            it == truth.end() ? 0.0 : static_cast<double>(it->second);
        // Soundness: estimate overestimates, by at most its own bound.
        EXPECT_GE(flow.estimated_packets + 1e-9, true_count);
        EXPECT_LE(flow.estimated_packets - flow.error_bound,
                  true_count + 1e-9);
        // Merged bound never exceeds the sum of the per-summary bounds.
        EXPECT_LE(flow.error_bound, summed_bound(flow.key) + 1e-9);
      }
      // Keys the merge lost entirely are bounded by its absent bound.
      for (const auto& [key, count] : truth) {
        const bool present = std::any_of(
            merged.flows.begin(), merged.flows.end(),
            [&](const fe::TrackedFlow& f) { return f.key == key; });
        if (!present) {
          EXPECT_LE(static_cast<double>(count), merged.absent_bound + 1e-9);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Aggregator policy
// ---------------------------------------------------------------------------

namespace {

fa::FlowSummary plain_summary(std::uint32_t agent, std::uint64_t epoch) {
  fa::FlowSummary summary;
  summary.agent_id = agent;
  summary.epoch = epoch;
  fa::SummaryEntry entry;
  entry.key = key_of(agent, epoch);
  entry.packets = 10;
  summary.entries.push_back(entry);
  return summary;
}

fa::AggregatorConfig two_agent_config() {
  fa::AggregatorConfig config;
  config.agents_expected = 2;
  config.window_s = 1.0;
  config.quarantine_after = 100;  // policy off unless a test wants it
  return config;
}

}  // namespace

TEST(Aggregator, OfferOutcomesAndWindowAccounting) {
  fa::Aggregator agg{two_agent_config()};

  EXPECT_EQ(agg.offer_summary(plain_summary(0, 0)), fa::OfferOutcome::kAccepted);
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 0)), fa::OfferOutcome::kDuplicate);
  EXPECT_EQ(agg.offer_summary(plain_summary(5, 0)),
            fa::OfferOutcome::kUnknownAgent);
  // Accepting a future epoch fences everything at or below it stale.
  EXPECT_EQ(agg.offer_summary(plain_summary(1, 3)), fa::OfferOutcome::kAccepted);
  EXPECT_EQ(agg.offer_summary(plain_summary(1, 2)), fa::OfferOutcome::kStale);

  // Corrupt bytes are charged to the transport lane; so is a
  // checksum-valid summary whose embedded id does not match the lane.
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_EQ(agg.offer(0, garbage), fa::OfferOutcome::kCorrupt);
  EXPECT_EQ(agg.offer(1, fa::serialize(plain_summary(0, 5))),
            fa::OfferOutcome::kCorrupt);

  EXPECT_THROW((void)agg.close_window(1), std::invalid_argument);
  const fa::MergedWindow w0 = agg.close_window(0);
  EXPECT_EQ(w0.epoch, 0u);
  EXPECT_DOUBLE_EQ(w0.time_s, 1.0);
  EXPECT_EQ(w0.agents_expected, 2u);
  EXPECT_EQ(w0.agents_merged, 1u);   // agent 0 reported, agent 1 buffered 3
  EXPECT_EQ(w0.missed, 1u);          // agent 1 had nothing for epoch 0
  EXPECT_DOUBLE_EQ(w0.coverage_fraction, 0.5);
  EXPECT_EQ(w0.duplicates, 1u);
  EXPECT_EQ(w0.stale, 1u);
  EXPECT_EQ(w0.corrupt, 2u);
  EXPECT_EQ(w0.late, 0u);
  ASSERT_EQ(w0.top.size(), 1u);
  EXPECT_EQ(w0.top[0].key, key_of(0, 0));
  EXPECT_DOUBLE_EQ(w0.top[0].estimated_packets, 10.0);

  // The row went out: epoch-0 input is now late, and the per-window
  // fault counts were reset at close.
  EXPECT_EQ(agg.offer_summary(plain_summary(1, 0)), fa::OfferOutcome::kLate);
  const fa::MergedWindow w1 = agg.close_window(1);
  EXPECT_EQ(w1.late, 1u);
  EXPECT_EQ(w1.corrupt, 0u);
  EXPECT_EQ(w1.duplicates, 0u);

  const fa::AggregatorCounters& c = agg.counters();
  EXPECT_EQ(c.summaries_offered, 8u);
  EXPECT_EQ(c.summaries_merged, 1u);
  EXPECT_EQ(c.corrupt_summaries, 2u);
  EXPECT_EQ(c.stale_summaries, 1u);
  EXPECT_EQ(c.late_summaries, 1u);
  EXPECT_EQ(c.duplicate_summaries, 1u);
  EXPECT_EQ(c.unknown_agent_summaries, 1u);
  EXPECT_EQ(c.windows_closed, 2u);
}

TEST(Aggregator, WindowRowMatchesColumnsAndStaysNumeric) {
  fa::Aggregator agg{two_agent_config()};
  (void)agg.offer_summary(plain_summary(0, 0));
  const fa::MergedWindow window = agg.close_window(0);
  const auto columns = fa::window_columns();
  const auto row = fa::window_row(window);
  ASSERT_EQ(row.size(), columns.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_TRUE(row[i].numeric()) << columns[i];
    EXPECT_TRUE(row[i].finite()) << columns[i];
  }
}

TEST(Aggregator, QuarantineAfterConsecutiveMissesThenReadmission) {
  fa::AggregatorConfig config;
  config.agents_expected = 1;
  config.window_s = 1.0;
  config.quarantine_after = 2;
  config.readmit_after = 2;
  fa::Aggregator agg(config);

  // Two consecutive silent windows quarantine the agent.
  EXPECT_EQ(agg.close_window(0).missed, 1u);
  const fa::MergedWindow w1 = agg.close_window(1);
  EXPECT_EQ(w1.missed, 1u);
  EXPECT_EQ(w1.quarantined, 1u);
  EXPECT_TRUE(agg.quarantined(0));
  EXPECT_EQ(agg.counters().quarantines, 1u);

  // Quarantined windows charge no misses and merge nothing.
  const fa::MergedWindow w2 = agg.close_window(2);
  EXPECT_EQ(w2.missed, 0u);
  EXPECT_EQ(w2.agents_merged, 0u);

  // First clean probe: consumed, not merged, not yet readmitted. A
  // duplicated probe for the same epoch counts once.
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 3)),
            fa::OfferOutcome::kQuarantinedProbe);
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 3)),
            fa::OfferOutcome::kDuplicate);
  const fa::MergedWindow w3 = agg.close_window(3);
  EXPECT_EQ(w3.agents_merged, 0u);
  EXPECT_TRUE(agg.quarantined(0));

  // Second clean probe readmits; its own window charges no miss.
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 4)),
            fa::OfferOutcome::kQuarantinedProbe);
  EXPECT_FALSE(agg.quarantined(0));
  EXPECT_EQ(agg.counters().readmissions, 1u);
  const fa::MergedWindow w4 = agg.close_window(4);
  EXPECT_EQ(w4.missed, 0u);
  EXPECT_EQ(w4.agents_merged, 0u);
  EXPECT_EQ(w4.quarantined, 0u);

  // Fully back: the next summary merges again.
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 5)), fa::OfferOutcome::kAccepted);
  const fa::MergedWindow w5 = agg.close_window(5);
  EXPECT_EQ(w5.agents_merged, 1u);
  EXPECT_DOUBLE_EQ(w5.coverage_fraction, 1.0);
  EXPECT_EQ(agg.counters().quarantined_probes, 2u);
}

TEST(Aggregator, CorruptProbeRestartsReadmissionCount) {
  fa::AggregatorConfig config;
  config.agents_expected = 1;
  config.window_s = 1.0;
  config.quarantine_after = 1;
  config.readmit_after = 2;
  fa::Aggregator agg(config);

  (void)agg.close_window(0);  // miss -> quarantine
  EXPECT_TRUE(agg.quarantined(0));
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 1)),
            fa::OfferOutcome::kQuarantinedProbe);
  // A corrupt message from the lane wipes the clean-probe streak.
  EXPECT_EQ(agg.offer(0, std::vector<std::uint8_t>{0xFF}),
            fa::OfferOutcome::kCorrupt);
  (void)agg.close_window(1);
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 2)),
            fa::OfferOutcome::kQuarantinedProbe);
  EXPECT_TRUE(agg.quarantined(0));  // streak restarted: still one short
  EXPECT_EQ(agg.offer_summary(plain_summary(0, 3)),
            fa::OfferOutcome::kQuarantinedProbe);
  EXPECT_FALSE(agg.quarantined(0));
}

// ---------------------------------------------------------------------------
// Fleet contracts
// ---------------------------------------------------------------------------

// Contract 1: a one-agent fleet is the direct single-pipeline path in
// disguise — same sampler seed, same stream order — so its merged
// windows are bit-identical to the direct replay at any shard count.
TEST(FleetRun, SingleAgentBitIdenticalToDirectPipelineAtAnyShardCount) {
  const ft::FlowTrace trace = small_trace(8.0, 120.0, 11);
  const double rate = 0.5;
  const double window_s = 2.0;
  const std::uint64_t seed = 9;

  const auto direct = replay_direct(trace, rate, seed, window_s,
                                    fp::FlowDefinition::kFiveTuple);

  std::vector<std::vector<std::vector<std::string>>> runs;
  for (const std::size_t shards : {1ul, 4ul}) {
    fa::FleetConfig config;
    config.agents = 1;
    config.window_s = window_s;
    config.sampling_rate = rate;
    config.seed = seed;
    config.num_shards = shards;
    config.top_t = 10;
    std::vector<fa::MergedWindow> windows;
    const fa::FleetReport report = fa::run_fleet(
        trace, config,
        [&](const fa::MergedWindow& w) { windows.push_back(w); });

    EXPECT_EQ(report.windows, ft::bin_count(trace.config.duration_s, window_s));
    ASSERT_EQ(windows.size(), report.windows);
    EXPECT_EQ(report.counters.missed_summaries, 0u);
    EXPECT_EQ(report.counters.corrupt_summaries, 0u);
    EXPECT_EQ(report.counters.late_summaries, 0u);
    EXPECT_EQ(report.packets_total, trace.total_packets());

    for (const fa::MergedWindow& window : windows) {
      const auto it = direct.find(window.epoch);
      const std::vector<ffl::FlowCounter> flows =
          it == direct.end() ? std::vector<ffl::FlowCounter>{} : it->second;
      EXPECT_DOUBLE_EQ(window.coverage_fraction, 1.0);
      EXPECT_EQ(window.merged_flows, flows.size());
      const auto expected_top = ffl::top_k(flows, config.top_t);
      ASSERT_EQ(window.top.size(), expected_top.size()) << window.epoch;
      for (std::size_t i = 0; i < expected_top.size(); ++i) {
        EXPECT_EQ(window.top[i].key, expected_top[i].key) << window.epoch;
        // Identical division, so identical doubles — not just close.
        EXPECT_EQ(window.top[i].estimated_packets,
                  static_cast<double>(expected_top[i].packets) / rate)
            << window.epoch;
        EXPECT_EQ(window.top[i].error_bound, 0.0);
      }
    }
    runs.push_back(row_texts(windows));
  }
  // Bit-identical rows across shard counts.
  EXPECT_EQ(runs[0], runs[1]);
}

// Contract 2: K agents over a disjoint flow split at full rate exactly
// reproduce the combined-trace per-window ranking; the per-packet split
// reproduces it too (every packet is counted exactly once).
TEST(FleetRun, FullRateSplitsReproduceCombinedTraceRanking) {
  const ft::FlowTrace trace = small_trace(8.0, 120.0, 23);
  const double window_s = 2.0;
  const auto direct = replay_direct(trace, 1.0, 1, window_s,
                                    fp::FlowDefinition::kFiveTuple);

  for (const fa::FleetSplit split :
       {fa::FleetSplit::kFlow, fa::FleetSplit::kPacket}) {
    fa::FleetConfig config;
    config.agents = 3;
    config.split = split;
    config.window_s = window_s;
    config.sampling_rate = 1.0;
    config.seed = 5;
    config.top_t = 10;
    std::vector<fa::MergedWindow> windows;
    (void)fa::run_fleet(trace, config, [&](const fa::MergedWindow& w) {
      windows.push_back(w);
    });

    for (const fa::MergedWindow& window : windows) {
      const auto it = direct.find(window.epoch);
      const std::vector<ffl::FlowCounter> flows =
          it == direct.end() ? std::vector<ffl::FlowCounter>{} : it->second;
      EXPECT_EQ(window.merged_flows, flows.size());
      EXPECT_EQ(window.packets_offered + 0u,
                [&] {
                  std::uint64_t sum = 0;
                  for (const auto& f : flows) sum += f.packets;
                  return sum;
                }());
      const auto expected_top = ffl::top_k(flows, config.top_t);
      ASSERT_EQ(window.top.size(), expected_top.size());
      for (std::size_t i = 0; i < expected_top.size(); ++i) {
        EXPECT_EQ(window.top[i].key, expected_top[i].key)
            << "split=" << static_cast<int>(split) << " w=" << window.epoch;
        EXPECT_EQ(window.top[i].estimated_packets,
                  static_cast<double>(expected_top[i].packets));
        EXPECT_EQ(window.top[i].error_bound, 0.0);
      }
    }
  }
}

// Sketch summaries trade exactness for bounded memory; the merged
// estimates must still bracket the true combined counts.
TEST(FleetRun, SketchSummariesBracketTruth) {
  const ft::FlowTrace trace = small_trace(8.0, 120.0, 31);
  const double window_s = 2.0;
  const auto direct = replay_direct(trace, 1.0, 1, window_s,
                                    fp::FlowDefinition::kFiveTuple);

  fa::FleetConfig config;
  config.agents = 2;
  config.split = fa::FleetSplit::kFlow;
  config.window_s = window_s;
  config.sampling_rate = 1.0;
  config.seed = 3;
  config.summary_kind = fa::SummaryKind::kSpaceSaving;
  config.summary_slots = 32;
  config.top_t = 5;
  std::vector<fa::MergedWindow> windows;
  (void)fa::run_fleet(trace, config, [&](const fa::MergedWindow& w) {
    windows.push_back(w);
  });

  for (const fa::MergedWindow& window : windows) {
    const auto it = direct.find(window.epoch);
    if (it == direct.end()) continue;
    std::map<fp::FlowKey, std::uint64_t> truth;
    for (const auto& f : it->second) truth[f.key] = f.packets;
    for (const fa::MergedFlow& flow : window.top) {
      const auto t = truth.find(flow.key);
      const double true_count =
          t == truth.end() ? 0.0 : static_cast<double>(t->second);
      EXPECT_GE(flow.estimated_packets + 1e-9, true_count);
      EXPECT_LE(flow.estimated_packets - flow.error_bound, true_count + 1e-9);
    }
  }
}

// Contract 3: a fault-injected run terminates, closes every window, and
// the aggregator's counters match the injected schedule exactly.
TEST(FleetRun, InjectedFaultScheduleMatchesAggregatorCounters) {
  const ft::FlowTrace trace = small_trace(40.0, 80.0, 13);

  fa::FleetConfig config;
  config.agents = 3;
  config.window_s = 2.0;
  config.sampling_rate = 1.0;
  config.seed = 17;
  config.quarantine_after = 1000;  // isolate transport accounting
  config.chan.drop_fraction = 0.15;
  config.chan.corrupt_fraction = 0.15;
  config.chan.delay_fraction = 0.10;
  config.chan.duplicate_fraction = 0.10;
  config.chan.seed = 0xFA117;

  std::uint64_t rows = 0;
  const fa::FleetReport report = fa::run_fleet(
      trace, config, [&](const fa::MergedWindow&) { ++rows; });

  // Every window closed despite the faults.
  EXPECT_EQ(report.windows, ft::bin_count(40.0, 2.0));
  EXPECT_EQ(rows, report.windows);
  EXPECT_EQ(report.counters.windows_closed, report.windows);

  const fa::ChannelCounters& injected = report.injected;
  const fa::AggregatorCounters& seen = report.counters;
  EXPECT_EQ(injected.submitted, report.windows * config.agents);
  // The schedule actually exercised every fault class.
  EXPECT_GT(injected.dropped, 0u);
  EXPECT_GT(injected.corrupted, 0u);
  EXPECT_GT(injected.delayed, 0u);
  EXPECT_GT(injected.duplicated, 0u);
  // One fault per summary, so the mapping is exact.
  EXPECT_EQ(seen.summaries_offered, injected.delivered);
  EXPECT_EQ(seen.corrupt_summaries, injected.corrupted);
  EXPECT_EQ(seen.late_summaries, injected.delayed);
  EXPECT_EQ(seen.duplicate_summaries, injected.duplicated);
  EXPECT_EQ(seen.missed_summaries,
            injected.dropped + injected.corrupted + injected.delayed);
  EXPECT_EQ(seen.summaries_merged,
            injected.submitted - injected.dropped - injected.corrupted -
                injected.delayed);
  EXPECT_EQ(seen.stale_summaries, 0u);
  EXPECT_EQ(seen.unknown_agent_summaries, 0u);
  EXPECT_EQ(seen.quarantines, 0u);
}

// Deterministic replay: identical config => identical schedule, rows,
// and counters.
TEST(FleetRun, FaultInjectedRunsAreReproducible) {
  const ft::FlowTrace trace = small_trace(12.0, 80.0, 19);
  fa::FleetConfig config;
  config.agents = 2;
  config.window_s = 2.0;
  config.sampling_rate = 0.5;
  config.seed = 21;
  config.chan.drop_fraction = 0.2;
  config.chan.corrupt_fraction = 0.2;

  const auto run = [&] {
    std::vector<fa::MergedWindow> windows;
    (void)fa::run_fleet(trace, config, [&](const fa::MergedWindow& w) {
      windows.push_back(w);
    });
    return row_texts(windows);
  };
  EXPECT_EQ(run(), run());
}

// End-to-end degraded-coverage contract: an outage starves one agent,
// quarantine kicks in, a clean probe readmits it, and every window's
// row still goes out with honest coverage.
TEST(FleetRun, OutageQuarantineAndReadmissionEndToEnd) {
  const ft::FlowTrace trace = small_trace(16.0, 80.0, 37);

  fa::FleetConfig config;
  config.agents = 3;
  config.window_s = 2.0;
  config.sampling_rate = 1.0;
  config.seed = 29;
  config.quarantine_after = 2;
  config.readmit_after = 1;
  config.chan.outage_agent = 1;
  config.chan.outage_from = 2;
  config.chan.outage_windows = 3;  // epochs 2, 3, 4 lost

  std::vector<fa::MergedWindow> windows;
  const fa::FleetReport report = fa::run_fleet(
      trace, config, [&](const fa::MergedWindow& w) { windows.push_back(w); });

  ASSERT_EQ(windows.size(), 8u);
  EXPECT_EQ(report.windows, 8u);
  EXPECT_EQ(report.injected.outage_dropped, 3u);

  const double degraded = 2.0 / 3.0;
  const std::vector<double> expected_coverage = {
      1.0, 1.0, degraded, degraded, degraded, degraded, 1.0, 1.0};
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_DOUBLE_EQ(windows[w].coverage_fraction, expected_coverage[w])
        << "window " << w;
  }
  // Misses charged for epochs 2 and 3 only; epoch 4 was quarantined and
  // epoch 5 was the excused readmission probe.
  EXPECT_EQ(windows[2].missed, 1u);
  EXPECT_EQ(windows[3].missed, 1u);
  EXPECT_EQ(windows[3].quarantined, 1u);
  EXPECT_EQ(windows[4].missed, 0u);
  EXPECT_EQ(windows[4].quarantined, 1u);
  EXPECT_EQ(windows[5].missed, 0u);
  EXPECT_EQ(windows[5].quarantined, 0u);  // readmitted at the probe offer
  EXPECT_EQ(windows[6].missed, 0u);
  EXPECT_EQ(windows[6].agents_merged, 3u);

  EXPECT_EQ(report.counters.quarantines, 1u);
  EXPECT_EQ(report.counters.readmissions, 1u);
  EXPECT_EQ(report.counters.quarantined_probes, 1u);
  EXPECT_EQ(report.counters.missed_summaries, 2u);
}

// ---------------------------------------------------------------------------
// Fault-injecting channel
// ---------------------------------------------------------------------------

TEST(SummaryChannel, ValidatesSpecAndStaysFaultFreeByDefault) {
  fa::SummaryFaultSpec bad;
  bad.drop_fraction = 0.7;
  bad.corrupt_fraction = 0.7;  // sums above 1
  EXPECT_THROW(fa::FaultInjectingSummaryChannel(bad, 2), std::invalid_argument);
  fa::SummaryFaultSpec bad2;
  bad2.delay_fraction = 0.1;
  bad2.delay_windows = 0;
  EXPECT_THROW(fa::FaultInjectingSummaryChannel(bad2, 2), std::invalid_argument);
  fa::SummaryFaultSpec bad3;
  bad3.outage_agent = 5;  // out of range for a 2-agent fleet
  EXPECT_THROW(fa::FaultInjectingSummaryChannel(bad3, 2), std::invalid_argument);

  // A clean channel delivers everything on time, in submission order.
  fa::FaultInjectingSummaryChannel channel({}, 2);
  channel.submit(0, 0, fa::serialize(plain_summary(0, 0)));
  channel.submit(1, 0, fa::serialize(plain_summary(1, 0)));
  const auto ready = channel.drain_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].agent_id, 0u);
  EXPECT_EQ(ready[1].agent_id, 1u);
  EXPECT_EQ(channel.counters().submitted, 2u);
  EXPECT_EQ(channel.counters().delivered, 2u);
  EXPECT_EQ(channel.counters().dropped, 0u);
  EXPECT_TRUE(channel.drain_all().empty());
}

TEST(SummaryChannel, CorruptionIsASingleBitFlip) {
  fa::SummaryFaultSpec spec;
  spec.corrupt_fraction = 1.0;
  fa::FaultInjectingSummaryChannel channel(spec, 1);
  const std::vector<std::uint8_t> original = fa::serialize(plain_summary(0, 0));
  channel.submit(0, 0, original);
  const auto ready = channel.drain_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  ASSERT_EQ(ready[0].bytes.size(), original.size());
  std::size_t flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    flipped_bits += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(ready[0].bytes[i] ^ original[i])));
  }
  EXPECT_EQ(flipped_bits, 1u);
  // And the flip is always detected downstream.
  expect_corrupt(ready[0].bytes, "channel-corrupted summary");
}
