// Tests for report::ResultSink: format goldens, the thread-safe
// reorder-buffer contract (byte-identical output at any emission order /
// thread count), and loud failure on dropped rows.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "flowrank/exec/task_pool.hpp"
#include "flowrank/report/result_sink.hpp"
#include "flowrank/sim/experiment.hpp"
#include "flowrank/util/error.hpp"

namespace fr = flowrank::report;
namespace fsim = flowrank::sim;

namespace {

fr::RunMetadata test_metadata() {
  fr::RunMetadata meta;
  meta.experiment = "unit";
  meta.version = "test";  // golden output must not depend on git describe
  meta.seed = 7;
  meta.spec_echo = {{"model", "exact"}, {"metric", "optimal_rate"}};
  return meta;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Strips the volatile git-describe version so experiment output can be
/// compared against checked-in goldens: the CSV "# version:" line and the
/// JSONL meta object's "version" value.
std::string strip_version(const std::string& text) {
  std::istringstream is(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("# version:", 0) == 0) continue;
    const auto pos = line.find("\"version\":\"");
    if (pos != std::string::npos) {
      const auto start = pos + 11;
      const auto end = line.find('"', start);
      if (end != std::string::npos) line.erase(start, end - start);
    }
    out << line << "\n";
  }
  return out.str();
}

/// A tiny exact-model sweep (3x3 optimal-rate grid) — small enough for a
/// golden file, big enough to exercise grid order.
fsim::ExperimentSpec tiny_exact_spec(std::size_t threads) {
  fsim::ExperimentSpec spec;
  spec.name = "tiny_exact";
  fsim::apply_experiment_entry(spec, "model", "exact");
  fsim::apply_experiment_entry(spec, "metric", "optimal_rate");
  fsim::apply_experiment_entry(spec, "target", "1e-3");
  fsim::apply_experiment_entry(spec, "sweep s1", "10,100,1000");
  fsim::apply_experiment_entry(spec, "sweep s2", "10..1000 log 3");
  spec.num_threads = threads;
  return spec;
}

}  // namespace

TEST(ResultSink, CsvGoldenBytes) {
  std::ostringstream os;
  fr::CsvResultSink sink(os);
  sink.open({"a", "b", "note"}, test_metadata());
  sink.emit(0, {1.5, std::int64_t{-2}, "plain"});
  sink.emit(1, {std::nan(""), std::uint64_t{7}, "with,comma"});
  sink.emit(2, {0.1, 3, "with \"quote\""});
  sink.close();
  EXPECT_EQ(os.str(),
            "# experiment: unit\n"
            "# version: test\n"
            "# seed: 7\n"
            "# spec model = exact\n"
            "# spec metric = optimal_rate\n"
            "a,b,note\n"
            "1.5,-2,plain\n"
            "nan,7,\"with,comma\"\n"
            "0.1,3,\"with \"\"quote\"\"\"\n");
}

TEST(ResultSink, JsonlGoldenBytes) {
  std::ostringstream os;
  fr::JsonlResultSink sink(os);
  sink.open({"a", "b", "note"}, test_metadata());
  sink.emit(0, {1.5, std::int64_t{-2}, "plain"});
  sink.emit(1, {std::nan(""), std::uint64_t{7}, "line\nbreak \"q\""});
  sink.close();
  EXPECT_EQ(os.str(),
            "{\"type\":\"meta\",\"experiment\":\"unit\",\"version\":\"test\","
            "\"seed\":7,\"spec\":{\"model\":\"exact\",\"metric\":\"optimal_rate\"},"
            "\"columns\":[\"a\",\"b\",\"note\"]}\n"
            "{\"type\":\"row\",\"a\":1.5,\"b\":-2,\"note\":\"plain\"}\n"
            "{\"type\":\"row\",\"a\":null,\"b\":7,\"note\":\"line\\nbreak "
            "\\\"q\\\"\"}\n");
}

TEST(ResultSink, ReordersOutOfOrderEmission) {
  std::ostringstream ordered_os, shuffled_os;
  fr::CsvResultSink ordered(ordered_os), shuffled(shuffled_os);
  const auto meta = test_metadata();
  ordered.open({"i"}, meta);
  shuffled.open({"i"}, meta);
  for (std::size_t i = 0; i < 6; ++i) ordered.emit(i, {static_cast<int>(i)});
  for (const std::size_t i : {3, 0, 5, 1, 4, 2}) {
    shuffled.emit(i, {static_cast<int>(i)});
  }
  ordered.close();
  shuffled.close();
  EXPECT_EQ(ordered_os.str(), shuffled_os.str());
  EXPECT_EQ(shuffled.rows_written(), 6u);
}

TEST(ResultSink, ConcurrentEmissionIsOrdered) {
  std::ostringstream os;
  fr::CsvResultSink sink(os);
  sink.open({"i", "sq"}, test_metadata());
  flowrank::exec::TaskPool pool(3);
  pool.parallel_for(64, [&sink](std::size_t i) {
    sink.emit(i, {static_cast<int>(i), static_cast<int>(i * i)});
  });
  sink.close();
  std::string expected;
  for (int i = 0; i < 64; ++i) {
    expected += std::to_string(i) + "," + std::to_string(i * i) + "\n";
  }
  const std::string text = os.str();
  EXPECT_NE(text.find("\ni,sq\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.find("\ni,sq\n") + 6), expected);
}

TEST(ResultSink, FailsLoudly) {
  std::ostringstream os;
  fr::CsvResultSink sink(os);
  sink.open({"a"}, test_metadata());
  EXPECT_THROW(sink.emit(0, {1, 2}), std::invalid_argument);  // column mismatch
  sink.emit(0, {1});
  EXPECT_THROW(sink.emit(0, {2}), std::invalid_argument);  // duplicate seq
  sink.emit(2, {3});                                       // leaves a hole at 1
  EXPECT_THROW(sink.close(), std::runtime_error);
}

TEST(ResultSink, TrailingDroppedRowsFailExpectedCount) {
  std::ostringstream os;
  fr::CsvResultSink sink(os);
  sink.open({"a"}, test_metadata());
  sink.emit(0, {1});
  sink.emit(1, {2});  // rows 2..3 of a 4-row grid never arrive
  EXPECT_THROW(sink.close(4), std::runtime_error);
}

// Regression: a failing stream (full disk, closed pipe) used to be
// swallowed silently — rows vanished and close() reported success. Every
// write is now checked and surfaces as flowrank::Error(kIo).
TEST(ResultSink, StreamWriteFailureSurfacesAsIoError) {
  std::ostringstream os;
  fr::CsvResultSink sink(os);
  sink.open({"a"}, test_metadata());
  sink.emit(0, {1});
  os.setstate(std::ios::badbit);  // the "disk" dies mid-run
  try {
    sink.emit(1, {2});
    FAIL() << "expected flowrank::Error(kIo)";
  } catch (const flowrank::Error& e) {
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kIo);
    EXPECT_EQ(e.context(), "report");
  }

  // A failure that only shows up at the final flush still fails close().
  std::ostringstream os2;
  fr::CsvResultSink sink2(os2);
  sink2.open({"a"}, test_metadata());
  sink2.emit(0, {1});
  os2.setstate(std::ios::badbit);
  EXPECT_THROW(sink2.close(1), flowrank::Error);
}

TEST(ResultSink, OpenTwiceThrows) {
  std::ostringstream os;
  fr::CsvResultSink sink(os);
  sink.open({"a"}, test_metadata());
  EXPECT_THROW(sink.open({"a"}, test_metadata()), std::invalid_argument);
}

TEST(ResultSink, MakeSinkSelectsFormatByExtension) {
  const std::string csv_path = ::testing::TempDir() + "sink_fmt.csv";
  const std::string jsonl_path = ::testing::TempDir() + "sink_fmt.jsonl";
  for (const auto& path : {csv_path, jsonl_path}) {
    auto owned = fr::make_sink(path, "");
    owned.sink->open({"x"}, test_metadata());
    owned.sink->emit(0, {1});
    owned.sink->close();
  }
  EXPECT_EQ(read_file(csv_path).substr(0, 1), "#");
  EXPECT_EQ(read_file(jsonl_path).substr(0, 1), "{");
  EXPECT_THROW(fr::make_sink("-", "xml"), std::invalid_argument);
  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());
}

// The golden-file contract: a tiny exact-model sweep produces the exact
// checked-in bytes (modulo the git-describe version line) in both
// formats, at threads 1 and 4 — deterministic grid ordering through the
// reorder buffer is part of the sink contract.
TEST(ResultSinkGolden, ExactSweepByteStableAcrossThreads) {
  for (const char* format : {"csv", "jsonl"}) {
    const std::string golden = read_file(std::string(FLOWRANK_SOURCE_DIR) +
                                         "/tests/golden/tiny_exact." + format);
    for (const std::size_t threads : {1u, 4u}) {
      const std::string path = ::testing::TempDir() + "tiny_exact_out";
      auto owned = fr::make_sink(path, format);
      fsim::run_experiment(tiny_exact_spec(threads), *owned.sink);
      owned.stream.reset();  // flush + close the file
      EXPECT_EQ(strip_version(read_file(path)), strip_version(golden))
          << format << " at threads " << threads;
      std::remove(path.c_str());
    }
  }
}
