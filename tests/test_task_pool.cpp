// Tests for the shared execution layer: pool mechanics (parallel_for
// claiming, submit/wait_idle, worker growth, the parallelism sanity cap)
// and the cooperative-task properties both engines rely on. These suites
// run under ThreadSanitizer in CI next to the Sharded*/SweepEngine*
// suites.
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/exec/task_pool.hpp"

namespace fex = flowrank::exec;

TEST(TaskPool, ParallelForRunsEveryIndexExactlyOnce) {
  fex::TaskPool pool(3);
  for (std::size_t parallelism : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(
        hits.size(),
        [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
        parallelism);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " parallelism " << parallelism;
    }
  }
}

TEST(TaskPool, ZeroWorkerPoolRunsEverythingInline) {
  fex::TaskPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
  bool ran = false;
  pool.submit([&] { ran = true; });  // inline: completes before returning
  EXPECT_TRUE(ran);
  pool.wait_idle();
}

TEST(TaskPool, SubmitTasksAllRunAndWaitIdleBlocksUntilDone) {
  fex::TaskPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 200);
}

TEST(TaskPool, EnsureWorkersGrowsAndNeverShrinks) {
  fex::TaskPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  pool.ensure_workers(2);  // no-op
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(TaskPool, ParallelForExceptionPropagatesAndPoolSurvives) {
  fex::TaskPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw std::runtime_error("cell 37");
            ran.fetch_add(1, std::memory_order_relaxed);
          },
          4),
      std::runtime_error);
  std::atomic<int> after{0};
  pool.parallel_for(
      16, [&](std::size_t) { after.fetch_add(1, std::memory_order_relaxed); }, 4);
  EXPECT_EQ(after.load(), 16);
}

TEST(TaskPool, ParallelismCapFailsFast) {
  EXPECT_THROW(fex::TaskPool{fex::TaskPool::kMaxParallelism + 1},
               std::invalid_argument);
  EXPECT_THROW(fex::TaskPool::resolve_parallelism(fex::TaskPool::kMaxParallelism + 1),
               std::invalid_argument);
  fex::TaskPool pool(1);
  EXPECT_THROW(pool.ensure_workers(fex::TaskPool::kMaxParallelism + 1),
               std::invalid_argument);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) {}, fex::TaskPool::kMaxParallelism + 1),
               std::invalid_argument);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}, 0), std::invalid_argument);
}

TEST(TaskPool, ResolveParallelismZeroMeansHardware) {
  EXPECT_GE(fex::TaskPool::resolve_parallelism(0), 1u);
  EXPECT_EQ(fex::TaskPool::resolve_parallelism(5), 5u);
}

TEST(TaskPool, SharedPoolPersistsAcrossUses) {
  auto& a = fex::TaskPool::shared();
  auto& b = fex::TaskPool::shared();
  EXPECT_EQ(&a, &b);
  a.ensure_workers(2);
  std::atomic<int> ran{0};
  a.parallel_for(
      32, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); }, 3);
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskPool, CooperativeTasksInterleaveWithParallelFor) {
  // Streaming tasks (the ingest shape) and a fork-join job (the sweep
  // shape) share the pool without starving each other.
  fex::TaskPool pool(2);
  std::atomic<int> streamed{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { streamed.fetch_add(1, std::memory_order_relaxed); });
  }
  std::atomic<int> swept{0};
  pool.parallel_for(
      100, [&](std::size_t) { swept.fetch_add(1, std::memory_order_relaxed); }, 3);
  pool.wait_idle();
  EXPECT_EQ(streamed.load(), 50);
  EXPECT_EQ(swept.load(), 100);
}
